// Package stream fans one hot engine run out to many subscribers. A Hub
// attaches to an in-flight run as a sim.Observer, encodes each record
// exactly once into the internal/trace JSONL wire format, and publishes
// the encoded frame to every subscriber through a bounded per-subscriber
// ring. A slow subscriber never blocks the engine: depending on the
// hub's policy its ring either overwrites oldest-first (with an exact
// drop counter) or the subscriber is evicted.
//
// The hub also retains a bounded history ring of recent frames, which is
// what makes SSE Last-Event-ID resume work: a reconnecting subscriber
// names the last sequence number it saw and receives everything retained
// after it, plus a gap count when the ring has already overwritten part
// of the range.
//
// A stream is the trace encoding, line for line: header first, then
// events — so a live stream pipes into the same consumers (visreplay,
// visviz) that read stored traces. Replay serves a Source (a stored
// trace file, or a finished hub's history) back as a timed stream.
package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"luxvis/internal/sim"
	"luxvis/internal/trace"
)

// Frame is one encoded stream record. Data is a single JSONL line
// without the trailing newline, shared by every subscriber — receivers
// must treat it as read-only.
type Frame struct {
	// Seq numbers frames from 1 (the header) in publish order; it is the
	// SSE event id and the resume cursor.
	Seq uint64
	// Kind mirrors the record's kind field ("header", "look", "compute",
	// "step", "crash", "epoch").
	Kind string
	// Epoch is the record's epoch stamp (0 for the header and for events
	// in the first epoch); replay's from-epoch seek filters on it.
	Epoch int
	Data  []byte
}

// SlowPolicy selects what happens to a subscriber whose ring is full
// when the next frame arrives.
type SlowPolicy int

const (
	// DropOldest overwrites the subscriber's oldest buffered frame; the
	// subscriber stays attached and Next transparently refills the
	// overwritten span from the hub's history ring. Frames are actually
	// lost — and counted, exactly, by Subscriber.Dropped — only when the
	// consumer lags beyond the History window, so the last copy is gone.
	DropOldest SlowPolicy = iota
	// Evict detaches the subscriber: its Next returns ErrEvicted after
	// the buffered frames drain. Use when a stalled consumer should be
	// disconnected rather than served a gappy stream.
	Evict
)

func (p SlowPolicy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Evict:
		return "evict"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Defaults for HubOptions zero fields.
const (
	// DefaultHistory is the hub history-ring capacity (resume window).
	DefaultHistory = 16384
	// DefaultSubscriberBuf is the per-subscriber ring capacity.
	DefaultSubscriberBuf = 256
)

// HubOptions configures a Hub. The zero value is usable.
//
// Goroutine-lifecycle contract (checked statically by the goleak
// analyzer, pinned dynamically by the lifecycle tests): the hub itself
// starts no goroutines — publish is a ring write plus a non-blocking
// notify, on the caller's stack. Every goroutine a *consumer* parks in
// Subscriber.Next is released by one of exactly three events: a frame
// arrival, the hub's Close (closeCh wakes every parked subscriber,
// after which Next drains buffers and returns io.EOF), or its own
// ctx. So a subscriber goroutine leaks only if its context never
// cancels AND the hub is never closed; hold one of those edges and
// termination is guaranteed. Close and Release are idempotent, and
// Subscribe after Close is legal (it serves retained history to EOF).
type HubOptions struct {
	// History is the hub-side retained-frame ring capacity (default
	// DefaultHistory). Resume reaches at most this far back; a finished
	// hub whose run fit entirely in the ring can be replayed in full.
	// Under DropOldest it is also the slow-consumer recovery window:
	// a lagging subscriber refills overwritten frames from history and
	// only loses frames once it trails by more than this.
	History int
	// SubscriberBuf is the per-subscriber ring capacity (default
	// DefaultSubscriberBuf).
	SubscriberBuf int
	// Policy is the slow-consumer policy (default DropOldest).
	Policy SlowPolicy
	// EpochMarks publishes an "epoch" record at every epoch boundary.
	// Off by default: the engine's event stream already carries epoch
	// stamps, and a mark-free stream stays byte-compatible with stored
	// traces. Turn it on for sources with no per-event stream (the
	// concurrent runtime emits only epoch-granular callbacks).
	EpochMarks bool
	// Note is stamped into the live header's note field (default
	// "live stream").
	Note string
	// Counters, when non-nil, receives process-wide accounting shared
	// across hubs (the luxvis_stream_* families).
	Counters *Counters
}

func (o HubOptions) withDefaults() HubOptions {
	if o.History <= 0 {
		o.History = DefaultHistory
	}
	if o.SubscriberBuf <= 0 {
		o.SubscriberBuf = DefaultSubscriberBuf
	}
	if o.Note == "" {
		o.Note = "live stream"
	}
	return o
}

// Subscriber errors.
var (
	// ErrEvicted reports that the hub's Evict policy detached this
	// subscriber because its ring was full when a frame arrived.
	ErrEvicted = errors.New("stream: subscriber evicted (slow consumer)")
	// ErrClosed reports an operation on a subscriber after its Close.
	ErrClosed = errors.New("stream: subscriber closed")
)

// Hub is a broadcast hub for one run. It implements sim.Observer: attach
// it via sim.Options.Observer (or obs.Multi) and it converts the run's
// callbacks into the published frame stream. All methods are safe for
// concurrent use; the observer callbacks may arrive from many goroutines
// (the concurrent runtime's contract) as well as from one.
//
// The engine-side callbacks never block: publishing is a ring write and
// a non-blocking notify per subscriber.
type Hub struct {
	opt HubOptions

	mu      sync.Mutex
	ring    []Frame // circular history buffer
	head    int     // index of oldest retained frame
	count   int
	nextSeq uint64 // seq assigned to the next published frame; first is 1
	subs    map[*Subscriber]struct{}
	info    sim.RunInfo
	done    bool
	endNote []byte // JSON end-of-stream status, set at Close
	closeCh chan struct{}

	released bool
}

// NewHub returns a hub ready to observe one run.
func NewHub(opt HubOptions) *Hub {
	opt = opt.withDefaults()
	h := &Hub{
		opt:     opt,
		ring:    make([]Frame, opt.History),
		nextSeq: 1,
		subs:    make(map[*Subscriber]struct{}),
		closeCh: make(chan struct{}),
	}
	if c := opt.Counters; c != nil {
		c.hubsOpen.Add(1)
	}
	return h
}

// encode marshals v, charging the encode-once cost to the counters.
func (h *Hub) encode(v any) []byte {
	c := h.opt.Counters
	var start time.Time
	if c != nil {
		start = time.Now()
	}
	b, err := json.Marshal(v)
	if err != nil {
		// The record types are fixed structs of finite floats and
		// strings; Marshal cannot fail on them. Guard anyway: a frame
		// with an error note beats a silent hole in the stream.
		b = []byte(fmt.Sprintf(`{"kind":"error","error":%q}`, err.Error()))
	}
	if c != nil {
		c.encodeNanos.Add(time.Since(start).Nanoseconds())
	}
	return b
}

// RunStart implements sim.Observer: it publishes the header frame. The
// live header carries the run identity but zero totals (they are not
// known yet) and a note marking it as a live stream; event lines are
// byte-identical to a stored trace of the same run.
func (h *Hub) RunStart(info sim.RunInfo) {
	h.mu.Lock()
	h.info = info
	h.mu.Unlock()
	data := h.encode(trace.Header{
		Kind:      "header",
		Algorithm: info.Algorithm,
		Scheduler: info.Scheduler,
		N:         info.N,
		Seed:      info.Seed,
		Note:      h.opt.Note,
	})
	h.publish("header", 0, data)
}

// Event implements sim.Observer: each engine event becomes one frame,
// encoded once.
func (h *Hub) Event(ev sim.TraceEvent) {
	data := h.encode(trace.Event{
		Kind:  ev.Kind,
		Event: ev.Event,
		Robot: ev.Robot,
		X:     ev.Pos.X,
		Y:     ev.Pos.Y,
		Color: ev.Color.String(),
		Epoch: ev.Epoch,
	})
	h.publish(ev.Kind, ev.Epoch, data)
}

// CycleEnd implements sim.Observer (no frame).
func (h *Hub) CycleEnd(sim.CycleInfo) {}

// MoveEnd implements sim.Observer (no frame).
func (h *Hub) MoveEnd(sim.MoveInfo) {}

// EpochEnd implements sim.Observer: with EpochMarks it publishes an
// epoch-boundary record.
func (h *Hub) EpochEnd(s sim.EpochSample) {
	if !h.opt.EpochMarks {
		return
	}
	data := h.encode(trace.EpochMark{Kind: "epoch", Epoch: s.Epoch, CV: s.CV})
	h.publish("epoch", s.Epoch, data)
}

// ViolationFound implements sim.Observer (no frame; the violating event
// itself is in the stream).
func (h *Hub) ViolationFound(sim.Violation) {}

// RunEnd implements sim.Observer: it ends the stream. Subscribers drain
// their buffered frames and then see io.EOF; EndNote carries the final
// status.
func (h *Hub) RunEnd(res *sim.Result, aborted error) {
	status := endStatus{Kind: "end", Reached: res.Reached, Epochs: res.Epochs, Events: res.Events}
	if aborted != nil {
		status.Aborted = aborted.Error()
	}
	h.CloseNote(status)
}

// endStatus is the end-of-stream summary surfaced by EndNote (and the
// SSE "end" event). It is not part of the JSONL frame stream.
type endStatus struct {
	Kind    string `json:"kind"` // always "end"
	Reached bool   `json:"reached"`
	Epochs  int    `json:"epochs"`
	Events  int    `json:"events"`
	Aborted string `json:"aborted,omitempty"`
}

// Close ends the stream with a generic status. Idempotent; concurrent
// publishes after Close are dropped.
func (h *Hub) Close(err error) {
	status := endStatus{Kind: "end"}
	if err != nil {
		status.Aborted = err.Error()
	}
	h.CloseNote(status)
}

// CloseNote ends the stream with the given status record.
func (h *Hub) CloseNote(status any) {
	note := h.encode(status)
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	h.done = true
	h.endNote = note
	h.mu.Unlock()
	// The close channel wakes every parked subscriber; closing it outside
	// the lock keeps channel operations out of the critical section.
	close(h.closeCh)
	if c := h.opt.Counters; c != nil {
		c.hubsOpen.Add(-1)
	}
}

// Done reports whether the stream has ended.
func (h *Hub) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

// EndNote returns the end-of-stream status JSON (nil while live).
func (h *Hub) EndNote() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.endNote
}

// Info returns the run identity seen at RunStart.
func (h *Hub) Info() sim.RunInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.info
}

// HubStats is a point-in-time summary of one hub.
type HubStats struct {
	// Frames is the number of frames published so far.
	Frames uint64
	// Depth is the number of frames currently retained for resume.
	Depth int
	// OldestSeq is the seq of the oldest retained frame (0 when empty).
	OldestSeq uint64
	// Subscribers is the number of attached subscribers.
	Subscribers int
	// Done reports whether the stream has ended.
	Done bool
}

// Stats returns the hub's current state.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HubStats{
		Frames:      h.nextSeq - 1,
		Depth:       h.count,
		Subscribers: len(h.subs),
		Done:        h.done,
	}
	if h.count > 0 {
		s.OldestSeq = h.ring[h.head].Seq
	}
	return s
}

// Release returns the hub's retained history accounting to the shared
// counters. Call when dropping the last reference to a finished hub
// (e.g. evicting it from a replay cache); the hub must already be
// closed. Idempotent.
func (h *Hub) Release() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.released {
		return
	}
	h.released = true
	if c := h.opt.Counters; c != nil {
		c.hubDepth.Add(-int64(h.count))
	}
}

// publish appends a frame to the history ring and fans it out. It never
// blocks: subscriber rings absorb, spill to history, or evict. A frame
// becomes *lost* for a subscriber only when neither that subscriber's
// ring nor the hub history retains it any longer; the loss is counted
// at the overwrite that removes the last copy, so drop counters are
// exact at every instant.
func (h *Hub) publish(kind string, epoch int, data []byte) {
	c := h.opt.Counters
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	f := Frame{Seq: h.nextSeq, Kind: kind, Epoch: epoch, Data: data}
	h.nextSeq++
	shedSeq := uint64(0) // seq the history ring sheds this publish
	if h.count < len(h.ring) {
		h.ring[(h.head+h.count)%len(h.ring)] = f
		h.count++
		if c != nil {
			c.hubDepth.Add(1)
		}
	} else {
		shedSeq = h.ring[h.head].Seq
		h.ring[h.head] = f
		h.head = (h.head + 1) % len(h.ring)
	}
	if shedSeq != 0 {
		// The shed frame is gone from history; any subscriber that still
		// needed it and does not hold its own copy has now lost it.
		for s := range h.subs {
			if s.next <= shedSeq && !(s.count > 0 && s.ring[s.head].Seq <= shedSeq) {
				s.dropped++
				if c != nil {
					c.droppedTotal.Add(1)
				}
			}
		}
	}
	var evicted []*Subscriber
	for s := range h.subs {
		if !s.pushLocked(f) {
			evicted = append(evicted, s)
		}
	}
	for _, s := range evicted {
		delete(h.subs, s)
	}
	h.mu.Unlock()
	if c != nil {
		c.framesTotal.Add(1)
		if n := len(evicted); n > 0 {
			c.evictedTotal.Add(int64(n))
			c.subscribers.Add(-int64(n))
		}
	}
}

// Subscriber is one attached consumer. Read frames with Next; call
// Close when done (the HTTP layer defers it). Not safe for concurrent
// Next calls from multiple goroutines.
//
// Delivery is two-tier under DropOldest: the subscriber's own bounded
// ring is the fast path, and when a burst overwrites it, Next refills
// the overwritten span from the hub's history ring. A frame is dropped
// — counted exactly, once — only when it has left both, i.e. the
// consumer lags further than the hub's History window.
type Subscriber struct {
	h *Hub
	// next is the seq of the next frame to deliver (the cursor).
	next uint64
	// ring is the bounded live buffer, guarded by h.mu. It only holds
	// frames with Seq >= next, contiguously.
	ring    []Frame
	head    int
	count   int
	dropped uint64
	gap     uint64 // frames already unrecoverable at Subscribe (resume truncation)
	evicted bool
	closed  bool
	notify  chan struct{}
}

// Subscribe attaches a consumer that receives every retained frame with
// Seq > afterSeq and all frames published afterwards. afterSeq 0 means
// "from the start of what the hub still retains". Subscribing to a
// finished hub is the replay-from-cache path: the subscriber drains the
// retained history and then sees io.EOF.
func (h *Hub) Subscribe(afterSeq uint64) *Subscriber {
	return h.SubscribeBuf(afterSeq, 0)
}

// SubscribeBuf is Subscribe with a per-subscriber ring capacity override
// (buf <= 0 uses the hub default). A consumer that knows it reads in
// bursts can buy itself headroom without changing the hub's policy for
// everyone else.
func (h *Hub) SubscribeBuf(afterSeq uint64, buf int) *Subscriber {
	if buf <= 0 {
		buf = h.opt.SubscriberBuf
	}
	h.mu.Lock()
	s := &Subscriber{
		h:      h,
		next:   afterSeq + 1,
		ring:   make([]Frame, buf),
		notify: make(chan struct{}, 1),
	}
	// Place the cursor. Frames the history ring has already shed are the
	// resume gap; everything still retained is served by Next directly
	// from history, under the same lock that publishes, so the splice is
	// gapless.
	if h.count > 0 {
		oldest := h.ring[h.head].Seq
		if s.next < oldest {
			s.gap = oldest - s.next
			s.next = oldest
		}
	} else if s.next < h.nextSeq {
		s.gap = h.nextSeq - s.next
		s.next = h.nextSeq
	}
	if !h.done {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	if c := h.opt.Counters; c != nil {
		c.subscribers.Add(1)
	}
	return s
}

// pushLocked buffers f for this subscriber; h.mu is held. It reports
// false when the Evict policy detaches the subscriber.
func (s *Subscriber) pushLocked(f Frame) bool {
	if s.closed || s.evicted {
		return true // already detached from delivery; nothing to do
	}
	if f.Seq < s.next {
		return true // cursor already past this frame (resume ahead of publish)
	}
	if s.count == len(s.ring) {
		if s.h.opt.Policy == Evict {
			s.evicted = true
			s.wake()
			return false
		}
		// Full ring: the oldest frame's slot is exactly where the new
		// tail lands once head advances, so one write both drops the
		// oldest and appends the newest. The overwritten frame is only
		// *lost* if the hub history (which f was just appended to) no
		// longer retains it for Next's refill path.
		old := s.ring[s.head]
		h := s.h
		if h.count == 0 || h.ring[h.head].Seq > old.Seq {
			s.dropped++
			if c := h.opt.Counters; c != nil {
				c.droppedTotal.Add(1)
			}
		}
		s.ring[s.head] = f
		s.head = (s.head + 1) % len(s.ring)
		s.wake()
		return true
	}
	s.ring[(s.head+s.count)%len(s.ring)] = f
	s.count++
	s.wake()
	return true
}

// wake nudges a parked Next without blocking. h.mu is held; the notify
// channel has capacity 1 and a non-blocking send, so this is safe under
// the lock (locksafe: select with default).
func (s *Subscriber) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next returns the next frame. It blocks until a frame arrives, the
// stream ends (io.EOF after all buffered frames drain), the subscriber
// is evicted (ErrEvicted, likewise after draining), or ctx is done.
//
// When a burst overwrote part of this subscriber's ring, Next refills
// the missing span from the hub's history ring, so a slow consumer only
// skips frames once it lags beyond the History window (the skipped span
// is exactly what Dropped reports).
func (s *Subscriber) Next(ctx context.Context) (Frame, error) {
	for {
		s.h.mu.Lock()
		if s.closed {
			s.h.mu.Unlock()
			return Frame{}, ErrClosed
		}
		// Fast path: the expected frame is at the front of our ring.
		if s.count > 0 && s.ring[s.head].Seq == s.next {
			f := s.ring[s.head]
			s.head = (s.head + 1) % len(s.ring)
			s.count--
			s.next = f.Seq + 1
			s.h.mu.Unlock()
			return f, nil
		}
		if !s.evicted && s.h.count > 0 && s.next < s.h.nextSeq {
			oldest := s.h.ring[s.h.head].Seq
			if s.next >= oldest {
				// Refill: our ring shed this frame (or the cursor is
				// resuming) but the hub history still retains it.
				f := s.h.ring[(s.h.head+int(s.next-oldest))%len(s.h.ring)]
				s.next = f.Seq + 1
				s.h.mu.Unlock()
				return f, nil
			}
			// Frames between the cursor and the oldest still-available
			// copy are gone; their loss was counted when the last copy
			// was overwritten. Jump to what survives and retry.
			avail := oldest
			if s.count > 0 && s.ring[s.head].Seq < avail {
				avail = s.ring[s.head].Seq
			}
			if avail > s.next {
				s.next = avail
				s.h.mu.Unlock()
				continue
			}
		}
		if s.evicted {
			// Drain our own buffer first: eviction detaches from future
			// publishes, it does not revoke what was already buffered.
			if s.count > 0 {
				f := s.ring[s.head]
				s.head = (s.head + 1) % len(s.ring)
				s.count--
				s.next = f.Seq + 1
				s.h.mu.Unlock()
				return f, nil
			}
			s.h.mu.Unlock()
			return Frame{}, ErrEvicted
		}
		if s.h.done {
			s.h.mu.Unlock()
			return Frame{}, io.EOF
		}
		s.h.mu.Unlock()
		select {
		case <-s.notify:
		case <-s.h.closeCh:
		case <-ctx.Done():
			return Frame{}, ctx.Err()
		}
	}
}

// Dropped returns how many frames this subscriber lost permanently —
// overwritten in both its own ring and the hub history before being
// read. The count is exact at every instant (losses are booked at the
// overwrite that removes the last copy), proven by test.
func (s *Subscriber) Dropped() uint64 {
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	return s.dropped
}

// Gap returns how many frames between the resume cursor and the oldest
// retained frame were already gone at Subscribe time (0 for a complete
// resume).
func (s *Subscriber) Gap() uint64 { return s.gap }

// Evicted reports whether the hub detached this subscriber.
func (s *Subscriber) Evicted() bool {
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	return s.evicted
}

// Close detaches the subscriber. Idempotent.
func (s *Subscriber) Close() {
	s.h.mu.Lock()
	if s.closed {
		s.h.mu.Unlock()
		return
	}
	s.closed = true
	wasEvicted := s.evicted
	delete(s.h.subs, s)
	s.h.mu.Unlock()
	// An evicted subscriber's gauge slot was already returned by the
	// publisher that evicted it.
	if c := s.h.opt.Counters; c != nil && !wasEvicted {
		c.subscribers.Add(-1)
	}
}
