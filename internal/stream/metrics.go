package stream

import (
	"sync/atomic"

	"luxvis/internal/obs"
)

// Counters aggregates streaming telemetry across every hub and
// subscriber that shares it — the process-wide numbers behind the
// luxvis_stream_* Prometheus families. All fields are atomics; a nil
// *Counters disables accounting entirely (hubs check once per call).
type Counters struct {
	// subscribers is the number of currently attached subscribers.
	subscribers atomic.Int64
	// droppedTotal counts frames overwritten in subscriber rings
	// (DropOldest policy) — each is one frame one slow consumer missed.
	droppedTotal atomic.Int64
	// evictedTotal counts subscribers force-detached by the Evict policy.
	evictedTotal atomic.Int64
	// framesTotal counts frames published across all hubs.
	framesTotal atomic.Int64
	// hubDepth is the total number of frames currently retained in hub
	// history rings (grows until each ring is full, drops when a hub is
	// released).
	hubDepth atomic.Int64
	// encodeNanos accumulates wall time spent encoding frames — the
	// encode-once cost every subscriber shares.
	encodeNanos atomic.Int64
	// hubsOpen is the number of hubs accepting frames (created and not
	// yet closed).
	hubsOpen atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type CountersSnapshot struct {
	Subscribers  int64
	DroppedTotal int64
	EvictedTotal int64
	FramesTotal  int64
	HubDepth     int64
	EncodeNanos  int64
	HubsOpen     int64
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() CountersSnapshot {
	if c == nil {
		return CountersSnapshot{}
	}
	return CountersSnapshot{
		Subscribers:  c.subscribers.Load(),
		DroppedTotal: c.droppedTotal.Load(),
		EvictedTotal: c.evictedTotal.Load(),
		FramesTotal:  c.framesTotal.Load(),
		HubDepth:     c.hubDepth.Load(),
		EncodeNanos:  c.encodeNanos.Load(),
		HubsOpen:     c.hubsOpen.Load(),
	}
}

// WritePrometheus emits the streaming families with the given name
// prefix (conventionally "luxvis_stream").
func (c *Counters) WritePrometheus(pw *obs.TextWriter, prefix string) {
	s := c.Snapshot()
	pw.Gauge(prefix+"_subscribers", "Currently attached stream subscribers.", float64(s.Subscribers))
	pw.Counter(prefix+"_dropped_total", "Frames dropped from slow subscriber rings (drop-oldest overwrites).", float64(s.DroppedTotal))
	pw.Counter(prefix+"_evicted_total", "Subscribers force-detached by the evict slow-consumer policy.", float64(s.EvictedTotal))
	pw.Counter(prefix+"_frames_total", "Frames published across all hubs.", float64(s.FramesTotal))
	pw.Gauge(prefix+"_hub_depth", "Frames currently retained in hub history rings.", float64(s.HubDepth))
	pw.Counter(prefix+"_encode_ns", "Nanoseconds spent encoding frames (each frame is encoded once, shared by all subscribers).", float64(s.EncodeNanos))
	pw.Gauge(prefix+"_hubs_open", "Hubs currently accepting frames.", float64(s.HubsOpen))
}
