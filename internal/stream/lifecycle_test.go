package stream_test

// Lifecycle-corner pins for the contracts the goleak/chanown analyzers
// formalize statically: Release and Subscriber.Close are idempotent
// (each returns its counter contribution exactly once, however many
// times callers race the teardown), a closed subscriber's Next fails
// fast with ErrClosed, and Subscribe on a finished hub serves the
// retained history to EOF instead of parking a goroutine forever.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
	"luxvis/internal/stream"
)

// publishN pushes n event frames through a hub via its observer
// interface (RunStart first, so frame 1 is the header).
func publishN(h *stream.Hub, n int) {
	h.RunStart(sim.RunInfo{Algorithm: "logvis", Scheduler: "fsync", N: 4, Seed: 1})
	for i := 0; i < n; i++ {
		h.Event(lifecycleEvent(i))
	}
}

func lifecycleEvent(i int) sim.TraceEvent {
	return sim.TraceEvent{Event: i, Robot: i % 4, Kind: "look", Pos: geom.Pt(float64(i), 0)}
}

// TestHubReleaseIdempotent: Release returns the hub's retained-depth
// contribution to the shared counters exactly once; a second (or
// tenth) Release must not drive the gauge negative.
func TestHubReleaseIdempotent(t *testing.T) {
	var ctr stream.Counters
	h := stream.NewHub(stream.HubOptions{Counters: &ctr})
	publishN(h, 5)
	h.Close(nil)

	if got := ctr.Snapshot().HubDepth; got != 6 {
		t.Fatalf("hubDepth after publishing = %d; want 6 (header + 5 events)", got)
	}
	for i := 0; i < 3; i++ {
		h.Release()
		if got := ctr.Snapshot().HubDepth; got != 0 {
			t.Fatalf("hubDepth after Release #%d = %d; want 0", i+1, got)
		}
	}
}

// TestSubscriberCloseIdempotent: Close returns the subscriber's gauge
// slot exactly once, and a closed subscriber's Next is an immediate
// ErrClosed, not a parked goroutine — the dynamic half of the goleak
// contract.
func TestSubscriberCloseIdempotent(t *testing.T) {
	var ctr stream.Counters
	h := stream.NewHub(stream.HubOptions{Counters: &ctr})
	defer h.Release()
	publishN(h, 2)

	s := h.Subscribe(0)
	if got := ctr.Snapshot().Subscribers; got != 1 {
		t.Fatalf("subscribers gauge after Subscribe = %d; want 1", got)
	}
	for i := 0; i < 3; i++ {
		s.Close()
		if got := ctr.Snapshot().Subscribers; got != 0 {
			t.Fatalf("subscribers gauge after Close #%d = %d; want 0", i+1, got)
		}
	}
	if _, err := s.Next(context.Background()); err != stream.ErrClosed {
		t.Fatalf("Next after Close = %v; want ErrClosed", err)
	}
	h.Close(nil)
}

// TestSubscriberCloseAfterEviction: the publisher that evicts a
// subscriber returns its gauge slot at eviction; Close afterwards must
// not return it again.
func TestSubscriberCloseAfterEviction(t *testing.T) {
	var ctr stream.Counters
	h := stream.NewHub(stream.HubOptions{
		Policy:        stream.Evict,
		SubscriberBuf: 1,
		Counters:      &ctr,
	})
	defer h.Release()

	s := h.Subscribe(0)
	publishN(h, 4) // ring of 1 overflows at the second frame: evicted
	if !s.Evicted() {
		t.Fatal("subscriber not evicted by overflow under the Evict policy")
	}
	if got := ctr.Snapshot().Subscribers; got != 0 {
		t.Fatalf("subscribers gauge after eviction = %d; want 0", got)
	}
	s.Close()
	if got := ctr.Snapshot().Subscribers; got != 0 {
		t.Fatalf("subscribers gauge after Close of evicted subscriber = %d; want 0 (slot already returned)", got)
	}
	h.Close(nil)
}

// TestSubscribeAfterClose: subscribing to a finished hub is the
// replay-from-cache path — the subscriber drains the retained history
// and then sees io.EOF without ever blocking.
func TestSubscribeAfterClose(t *testing.T) {
	var ctr stream.Counters
	h := stream.NewHub(stream.HubOptions{Counters: &ctr})
	defer h.Release()
	publishN(h, 3)
	h.Close(nil)

	s := h.Subscribe(0)
	defer s.Close()
	var seqs []uint64
	ctx := context.Background()
	for {
		f, err := s.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		seqs = append(seqs, f.Seq)
	}
	if want := fmt.Sprint([]uint64{1, 2, 3, 4}); fmt.Sprint(seqs) != want {
		t.Fatalf("post-Close Subscribe drained seqs %v; want %s", seqs, want)
	}
	// The hub is done: a publish arriving now (a straggling observer
	// callback) is dropped, and the drained subscriber keeps seeing EOF.
	h.Event(lifecycleEvent(99))
	if _, err := s.Next(ctx); err != io.EOF {
		t.Fatalf("Next after post-Close publish = %v; want io.EOF (publish after Close must be dropped)", err)
	}
}

// TestLifecycleCountersBalance: a full create/publish/subscribe/close/
// release cycle leaves every gauge at zero — the invariant that makes
// the Prometheus families trustworthy across many runs.
func TestLifecycleCountersBalance(t *testing.T) {
	var ctr stream.Counters
	for i := 0; i < 3; i++ {
		h := stream.NewHub(stream.HubOptions{Counters: &ctr})
		publishN(h, 4)
		s1, s2 := h.Subscribe(0), h.Subscribe(0)
		h.Close(nil)
		s1.Close()
		s2.Close()
		s2.Close() // double close inside the loop: must stay balanced
		h.Release()
		h.Release()
	}
	snap := ctr.Snapshot()
	if snap.Subscribers != 0 || snap.HubDepth != 0 || snap.HubsOpen != 0 {
		t.Fatalf("gauges after full lifecycles: subscribers=%d hubDepth=%d hubsOpen=%d; want all 0",
			snap.Subscribers, snap.HubDepth, snap.HubsOpen)
	}
}
