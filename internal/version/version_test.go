package version

import (
	"runtime"
	"strings"
	"testing"
)

func TestStringIsPopulated(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, "luxvis") {
		t.Errorf("String() = %q, want luxvis prefix", s)
	}
	if !strings.Contains(s, runtime.Version()) {
		t.Errorf("String() = %q, want embedded go version %q", s, runtime.Version())
	}
}

func TestRevisionConsistency(t *testing.T) {
	rev, dirty, ok := Revision()
	if !ok && (rev != "" || dirty) {
		t.Errorf("Revision() = (%q, %v, %v): rev/dirty must be zero when not ok", rev, dirty, ok)
	}
	// Under `go test` the binary usually has build info but no VCS
	// stamp; either way String must not panic and must stay stable.
	if String() != String() {
		t.Error("String() is not stable across calls")
	}
}
