// Package version derives a build identity string from the binary's
// embedded Go build info: module version, VCS revision and dirty bit.
// Every cmd binary prints it under -version, and visserve reports it in
// /healthz, so a scrape or a bug report pins the exact build without a
// linker-flag injection step.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Revision returns the VCS revision baked into the build info, with its
// local-modifications bit. ok is false when the binary was built without
// VCS stamping (e.g. `go test`, or a build outside a checkout).
func Revision() (rev string, dirty bool, ok bool) {
	bi, found := debug.ReadBuildInfo()
	if !found {
		return "", false, false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			ok = true
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty, ok
}

// Short renders the build identity without the Go toolchain version,
// e.g. "luxvis (devel) rev 1a2b3c4d+dirty" — for contexts (like the
// build-info metric) where the toolchain is carried separately.
func Short() string {
	mod, ver := "luxvis", "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			mod = bi.Main.Path
		}
		if bi.Main.Version != "" {
			ver = bi.Main.Version
		}
	}
	s := fmt.Sprintf("%s %s", mod, ver)
	if rev, dirty, ok := Revision(); ok {
		short := rev
		if len(short) > 12 {
			short = short[:12]
		}
		s += " rev " + short
		if dirty {
			s += "+dirty"
		}
	}
	return s
}

// String renders the full build identity, e.g.
// "luxvis (devel) rev 1a2b3c4d+dirty go1.22.1". Fields that the build
// did not stamp are omitted.
func String() string {
	return Short() + " " + runtime.Version()
}
