package circlevis_test

import (
	"testing"

	"luxvis/internal/circlevis"
	"luxvis/internal/config"
	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

func TestCircleVisBasics(t *testing.T) {
	a := circlevis.NewCircleVis()
	if a.Name() != "circlevis" {
		t.Errorf("Name = %q", a.Name())
	}
	if len(a.Palette()) != 4 {
		t.Errorf("palette = %d", len(a.Palette()))
	}
}

func TestCircleVisSettledRobotStays(t *testing.T) {
	a := circlevis.NewCircleVis()
	// Three robots on a common circle: each is on its view's SEC
	// boundary and must hold.
	s := model.Snapshot{
		Self: model.RobotView{Pos: geom.Pt(10, 0), Color: model.Off},
		Others: []model.RobotView{
			{Pos: geom.Pt(-5, 8.66), Color: model.Corner},
			{Pos: geom.Pt(-5, -8.66), Color: model.Corner},
		},
	}
	act := a.Compute(s)
	if !act.IsStay(geom.Pt(10, 0)) {
		t.Errorf("on-circle robot moved: %+v", act)
	}
}

func TestCircleVisInteriorMovesOutward(t *testing.T) {
	a := circlevis.NewCircleVis()
	s := model.Snapshot{
		Self: model.RobotView{Pos: geom.Pt(2, 1), Color: model.Off},
		Others: []model.RobotView{
			{Pos: geom.Pt(10, 0), Color: model.Off},
			{Pos: geom.Pt(-10, 0), Color: model.Off},
			{Pos: geom.Pt(0, 10), Color: model.Off},
			{Pos: geom.Pt(0, -10), Color: model.Off},
		},
	}
	act := a.Compute(s)
	if act.IsStay(geom.Pt(2, 1)) {
		t.Fatal("interior robot did not move")
	}
	if act.Color != model.Transit {
		t.Errorf("mover color = %v", act.Color)
	}
	// Radial: the target must be farther from the SEC center (≈ origin).
	if act.Target.Norm() <= geom.Pt(2, 1).Norm() {
		t.Errorf("move not outward: %v", act.Target)
	}
}

func TestCircleVisConvergesGeneric(t *testing.T) {
	for _, fam := range []config.Family{config.Uniform, config.Clustered, config.Circle, config.Onion} {
		for _, n := range []int{6, 12, 24} {
			pts := config.Generate(fam, n, 5)
			opt := sim.DefaultOptions(sched.NewAsyncRandom(), 5)
			opt.MaxEpochs = 2000
			res, err := sim.Run(circlevis.NewCircleVis(), pts, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Reached {
				t.Errorf("%s n=%d: did not converge in %d epochs", fam, n, res.Epochs)
				continue
			}
			if res.Collisions != 0 {
				t.Errorf("%s n=%d: %d collisions", fam, n, res.Collisions)
			}
			if !exact.CompleteVisibilityHybrid(res.Final) {
				t.Errorf("%s n=%d: final config fails exact CV", fam, n)
			}
		}
	}
}

func TestCircleVisAlone(t *testing.T) {
	a := circlevis.NewCircleVis()
	act := a.Compute(model.Snapshot{Self: model.RobotView{Pos: geom.Pt(1, 1)}})
	if !act.IsStay(geom.Pt(1, 1)) || act.Color != model.Done {
		t.Errorf("alone: %+v", act)
	}
}
