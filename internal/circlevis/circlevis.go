// Package circlevis implements CircleVis, a simple reference strategy
// for Complete Visibility inspired by the "move onto a common circle"
// family of mutual-visibility algorithms (Di Luna, Flocchini, Chaudhuri,
// Poloni, Santoro, Viglietta — Information & Computation 2017). Robots
// converge onto the boundary of the smallest enclosing circle of their
// view: points on a common circle are in strictly convex position, so a
// fully-on-circle swarm satisfies Complete Visibility.
//
// CircleVis exists as a second comparison point beside the paper's
// LogVis and the SeqVis translation: it is structurally different
// (no beacons, no interval bookkeeping — pure radial motion) and its
// per-epoch parallelism is high, but robots sharing a radial ray must
// serialize, it never terminates-by-proof on symmetric inputs, and its
// movement cost is higher. Experiment F8 measures all of this. It is a
// reference implementation, not part of the paper's contribution.
package circlevis

import (
	"math"

	"luxvis/internal/geom"
	"luxvis/internal/model"
)

// CircleVis moves every robot radially onto the smallest enclosing
// circle of its view. The zero value is ready to use.
type CircleVis struct {
	// StepFrac is the fraction of the remaining radial distance covered
	// per move (default 1: go straight to the boundary when the path is
	// clear).
	StepFrac float64
}

// NewCircleVis returns a CircleVis with default tunables.
func NewCircleVis() *CircleVis { return &CircleVis{} }

// Name implements model.Algorithm.
func (*CircleVis) Name() string { return "circlevis" }

// Palette implements model.Algorithm: four colors.
func (*CircleVis) Palette() []model.Color {
	return []model.Color{model.Off, model.Corner, model.Transit, model.Done}
}

func (a *CircleVis) stepFrac() float64 {
	if a.StepFrac <= 0 || a.StepFrac > 1 {
		return 1
	}
	return a.StepFrac
}

// Compute implements model.Algorithm.
func (a *CircleVis) Compute(s model.Snapshot) model.Action {
	self := s.Self.Pos
	if len(s.Others) == 0 {
		return model.Stay(self, model.Done)
	}
	pts := s.Points()
	sec := geom.MinEnclosingCircle(pts)

	if sec.OnBoundary(self) {
		// Settled. Done once everything visible has settled too.
		if s.AllOthersColored(model.Corner, model.Done) {
			return model.Stay(self, model.Done)
		}
		return model.Stay(self, model.Corner)
	}

	// Radial target on the boundary. Robots exactly at the center have
	// no ray; nudge along the direction to the nearest visible robot.
	dir := self.Sub(sec.Center)
	if dir.Norm() < geom.Eps*math.Max(1, sec.R) {
		v, _ := s.Nearest()
		dir = v.Pos.Sub(self)
		if dir.Norm() <= geom.Eps {
			return model.Stay(self, model.Off)
		}
	}
	dir = dir.Unit()
	boundary := sec.Center.Add(dir.Mul(sec.R))
	target := self.Lerp(boundary, a.stepFrac())

	// Radial corridors from a (nearly) common center do not cross, but
	// robots sharing a ray must serialize: the outer robot moves first,
	// the inner one sees it in its corridor and waits. The Transit light
	// additionally yields to any mover whose current position is near
	// this corridor.
	margin := s.NearestDist() / 8
	margin = math.Min(margin, self.Dist(target)/4)
	obstacles := s.OtherPoints()
	if !geom.PathClear(self, target, obstacles, margin) {
		// Try a shorter hop, then a slightly rotated boundary slot —
		// the escape hatch for robots sharing a ray with an already
		// settled robot (their radial target is occupied forever).
		target = self.Lerp(boundary, a.stepFrac()/2)
		if !geom.PathClear(self, target, obstacles, math.Min(margin, self.Dist(target)/4)) {
			rot := s.NearestDist() / math.Max(sec.R, geom.Eps) / 4
			rotated := boundary.RotateAround(sec.Center, rot)
			target = self.Lerp(rotated, a.stepFrac()/2)
			if !geom.PathClear(self, target, obstacles, math.Min(margin, self.Dist(target)/4)) {
				return model.Stay(self, model.Off)
			}
		}
	}
	for _, o := range s.Others {
		if o.Color != model.Transit {
			continue
		}
		if geom.Seg(self, target).Dist(o.Pos) < 4*margin {
			return model.Stay(self, model.Off)
		}
	}
	return model.MoveTo(target, model.Transit)
}

// compile-time interface check
var _ model.Algorithm = (*CircleVis)(nil)
