// Package verify is an independent auditor for recorded runs: given the
// event trace of a simulation (sim.Result with RecordTrace), it
// reconstructs the world event by event and re-derives every safety
// verdict from scratch — collisions, pass-throughs, concurrent path
// crossings, palette compliance, and the terminal Complete Visibility
// predicate. It shares the exact predicates with the engine but none of
// its bookkeeping, so agreement between the two is a genuine cross-check
// (the engine watching itself is not).
//
// Crash-fault runs audit the same way: a "crash" trace event ends the
// victim's open move where it stood (the traveled prefix enters the
// crossing sweep, matching the engine's end-of-move accounting), the
// victim must stay silent for the rest of the trace, and the terminal
// predicate splits into FinalCV (all robots) and SurvivorCV (mutual
// visibility among survivors only, with the halted robots still
// obstructing — the predicate a crash run's Reached refers to).
//
// cmd/visreplay -verify drives it; the test suite asserts
// engine/auditor agreement across algorithms and schedulers.
package verify

import (
	"fmt"

	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sim"
)

// Report is the auditor's independent tally for one recorded run.
type Report struct {
	// Events is the number of trace events audited.
	Events int
	// Colocations counts exact position coincidences after any step.
	Colocations int
	// PassThroughs counts steps whose swept segment passed exactly
	// through another robot's position.
	PassThroughs int
	// PathCrossings counts pairs of cycle-span-concurrent moves whose
	// full path segments properly cross or collinearly overlap
	// (exactly).
	PathCrossings int
	// PaletteViolations counts colors outside the declared palette.
	PaletteViolations int
	// Crashes counts crash events; Crashed lists the halted robots in
	// ascending index order.
	Crashes int
	Crashed []int
	// FinalCV reports the exact Complete Visibility predicate on the
	// reconstructed final configuration, all robots included.
	FinalCV bool
	// SurvivorCV reports mutual visibility among the robots alive at the
	// end of the trace, with crashed robots still obstructing; equal to
	// FinalCV when nothing crashed. For a crash run this — not FinalCV —
	// is the predicate the engine's Reached refers to.
	SurvivorCV bool
	// Problems lists human-readable descriptions of everything found
	// (capped at 100 entries).
	Problems []string
}

func (r *Report) problem(format string, args ...any) {
	if len(r.Problems) < 100 {
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

// Clean reports whether the audit found no safety violations at all.
func (r *Report) Clean() bool {
	return r.Colocations == 0 && r.PassThroughs == 0 &&
		r.PathCrossings == 0 && r.PaletteViolations == 0
}

// move is a reconstructed relocation: consecutive step events of one
// robot belonging to one cycle (bounded by that robot's look/compute
// events).
type move struct {
	robot     int
	from, to  geom.Point
	lookEvent int
	endEvent  int
}

// Audit reconstructs and re-verifies a recorded run. The result must
// have been produced with Options.RecordTrace; start must be the run's
// initial configuration (res.Trace does not repeat it). palette is the
// algorithm's declared color set.
func Audit(start []geom.Point, palette []model.Color, res sim.Result) (*Report, error) {
	if len(res.Trace) == 0 {
		return nil, fmt.Errorf("verify: result has no recorded trace")
	}
	n := len(start)
	if n != res.N {
		return nil, fmt.Errorf("verify: start has %d robots, result says %d", n, res.N)
	}
	rep := &Report{}
	allowed := map[model.Color]bool{model.Off: true}
	for _, c := range palette {
		allowed[c] = true
	}

	pos := append([]geom.Point(nil), start...)
	lastLook := make([]int, n)
	for i := range lastLook {
		lastLook[i] = -1
	}
	// Open moves per robot (in flight), and the log of completed moves
	// for the concurrency sweep.
	open := make([]*move, n)
	var done []move
	crashed := make([]bool, n)

	// flush closes robot r's open move. Its endEvent is already the
	// event of the last executed sub-step — the moment the executed
	// segment stopped growing — and is deliberately NOT advanced to the
	// flush point (the robot's next Look, its crash, or the end of the
	// trace): between the last sub-step and the flush the robot changed
	// nothing, so no later motion can have been concurrent with this
	// move. Stamping the flush event here would widen the concurrency
	// span and over-count crossings relative to the engine.
	flush := func(r int) {
		if open[r] != nil {
			done = append(done, *open[r])
			open[r] = nil
		}
	}

	for _, e := range res.Trace {
		rep.Events++
		if e.Robot < 0 || e.Robot >= n {
			return nil, fmt.Errorf("verify: event %d names robot %d of %d", e.Event, e.Robot, n)
		}
		if crashed[e.Robot] {
			// A halted robot is dead forever — any later event under its
			// name means the engine kept scheduling a crashed robot.
			return nil, fmt.Errorf("verify: event %d: robot %d acted (%s) after crashing",
				e.Event, e.Robot, e.Kind)
		}
		p := geom.Pt(e.Pos.X, e.Pos.Y)
		switch e.Kind {
		case "crash":
			// The victim halts where it stands: its in-flight move, if
			// any, ends as the traveled prefix — the same truncated
			// segment the engine feeds its end-of-move crossing check.
			flush(e.Robot)
			crashed[e.Robot] = true
			rep.Crashes++
		case "look":
			flush(e.Robot)
			lastLook[e.Robot] = e.Event
		case "compute":
			if !allowed[e.Color] {
				rep.PaletteViolations++
				rep.problem("event %d: robot %d lit undeclared color %v", e.Event, e.Robot, e.Color)
			}
		case "step":
			old := pos[e.Robot]
			// Audit the swept sub-segment against every other robot.
			for o := 0; o < n; o++ {
				if o == e.Robot {
					continue
				}
				q := pos[o]
				// Bitwise on purpose: the auditor recounts *exact*
				// colocations, independently mirroring the engine's
				// checkSubStep refinement of the epsilon hit.
				//lint:allow floateq exact colocation is the property being audited
				if q.X == p.X && q.Y == p.Y {
					rep.Colocations++
					rep.problem("event %d: robots %d and %d at %v", e.Event, e.Robot, o, p)
					continue
				}
				if geom.Seg(old, p).Dist(q) <= 10*geom.Eps &&
					exact.StrictlyBetween(exact.FromFloat(old), exact.FromFloat(p), exact.FromFloat(q)) {
					rep.PassThroughs++
					rep.problem("event %d: robot %d passed through robot %d at %v", e.Event, e.Robot, o, q)
				}
			}
			if open[e.Robot] == nil {
				open[e.Robot] = &move{
					robot:     e.Robot,
					from:      old,
					lookEvent: lastLook[e.Robot],
				}
			}
			open[e.Robot].to = p
			open[e.Robot].endEvent = e.Event
			pos[e.Robot] = p
		default:
			return nil, fmt.Errorf("verify: unknown trace event kind %q", e.Kind)
		}
	}
	for r := range open {
		flush(r)
	}

	rep.PathCrossings = crossingSweep(done, rep)
	rep.FinalCV = exact.CompleteVisibilityHybrid(pos)
	rep.SurvivorCV = rep.FinalCV
	if rep.Crashes > 0 {
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = !crashed[i]
			if crashed[i] {
				rep.Crashed = append(rep.Crashed, i)
			}
		}
		rep.SurvivorCV = exact.CompleteVisibilityAmong(pos, alive)
	}

	// Cross-check the derived crashed set against the engine's (both in
	// ascending index order — the engine sorts at finish, the auditor
	// collects by index).
	if len(rep.Crashed) != len(res.Crashed) {
		return nil, fmt.Errorf("verify: trace shows %d crashes %v, engine recorded %v",
			len(rep.Crashed), rep.Crashed, res.Crashed)
	}
	for i, r := range rep.Crashed {
		if r != res.Crashed[i] {
			return nil, fmt.Errorf("verify: crashed set mismatch: trace %v, engine %v",
				rep.Crashed, res.Crashed)
		}
	}

	// Cross-check the reconstructed final configuration against the
	// engine's.
	for i := range pos {
		if !pos[i].Eq(res.Final[i]) {
			return nil, fmt.Errorf("verify: reconstructed position %d = %v, engine recorded %v",
				i, pos[i], res.Final[i])
		}
	}
	return rep, nil
}

// crossingSweep counts cycle-span-concurrent move pairs with properly
// crossing (or collinearly overlapping) paths — the same conservative
// concurrency notion as the engine, derived independently: moves A and B
// conflict when A's span [lookEvent, endEvent] overlaps B's motion
// window and their full segments intersect improperly.
func crossingSweep(moves []move, rep *Report) int {
	count := 0
	for i := 0; i < len(moves); i++ {
		for j := i + 1; j < len(moves); j++ {
			a, b := moves[i], moves[j]
			if a.robot == b.robot {
				continue
			}
			// Sequential iff one move ends before the other robot even
			// took the snapshot that decided its move; everything else
			// is potentially concurrent in continuous time (the
			// engine's notion, re-derived).
			if a.endEvent <= b.lookEvent || b.endEvent <= a.lookEvent {
				continue
			}
			sa := geom.Seg(a.from, a.to)
			sb := geom.Seg(b.from, b.to)
			kind, _ := sa.Intersect(sb)
			hit := false
			switch kind {
			case geom.ProperCrossing:
				hit = exact.SegmentsProperlyCross(
					exact.FromFloat(sa.A), exact.FromFloat(sa.B),
					exact.FromFloat(sb.A), exact.FromFloat(sb.B))
			case geom.Overlapping:
				hit = exact.SegmentsOverlap(
					exact.FromFloat(sa.A), exact.FromFloat(sa.B),
					exact.FromFloat(sb.A), exact.FromFloat(sb.B))
			}
			if hit {
				count++
				rep.problem("moves of robots %d (events %d-%d) and %d (events %d-%d) cross",
					a.robot, a.lookEvent, a.endEvent, b.robot, b.lookEvent, b.endEvent)
			}
		}
	}
	return count
}
