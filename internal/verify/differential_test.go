package verify

import (
	"math/rand"
	"testing"

	"luxvis/internal/baseline"
	"luxvis/internal/circlevis"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/exact"
	"luxvis/internal/model"
	"luxvis/internal/scenario"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

// TestDifferentialSweep draws random cells from the full
// (algorithm × scheduler × family × N × seed × rigidity) space and
// requires the independent trace auditor to reach the engine's exact
// verdict on every one: same collision count, same path-crossing
// count, same palette-violation count, and the same final Complete
// Visibility predicate (re-decided with exact rational arithmetic).
// The draw is seeded, so a failing cell reproduces deterministically.
func TestDifferentialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("50-run differential sweep in -short mode")
	}
	algos := []struct {
		name string
		mk   func() model.Algorithm
	}{
		{"logvis", func() model.Algorithm { return core.NewLogVis() }},
		{"seqvis", func() model.Algorithm { return baseline.NewSeqVis() }},
		{"circlevis", func() model.Algorithm { return circlevis.NewCircleVis() }},
	}
	schedulers := sched.Names()
	families := config.Families()

	rng := rand.New(rand.NewSource(20260806))
	const draws = 50
	for d := 0; d < draws; d++ {
		a := algos[rng.Intn(len(algos))]
		schedName := schedulers[rng.Intn(len(schedulers))]
		fam := families[rng.Intn(len(families))]
		n := 8 + rng.Intn(33) // 8..40
		seed := int64(1 + rng.Intn(1000))
		nonRigid := d%2 == 1

		algo := a.mk()
		pts := config.Generate(fam, n, seed)
		opt := sim.DefaultOptions(sched.ByName(schedName), seed)
		opt.MaxEpochs = 256
		opt.NonRigid = nonRigid
		opt.RecordTrace = true

		res, err := sim.Run(algo, pts, opt)
		if err != nil {
			t.Fatalf("draw %d: sim.Run: %v", d, err)
		}
		rep, err := Audit(pts, algo.Palette(), res)
		if err != nil {
			t.Fatalf("draw %d: Audit: %v", d, err)
		}

		label := func() string {
			return a.name + "/" + schedName + "/" + string(fam)
		}
		if got, want := rep.Colocations+rep.PassThroughs, res.Collisions; got != want {
			t.Errorf("draw %d (%s n=%d seed=%d nonRigid=%v): auditor collisions %d, engine %d\n%v",
				d, label(), n, seed, nonRigid, got, want, rep.Problems)
		}
		if got, want := rep.PathCrossings, res.PathCrossings; got != want {
			t.Errorf("draw %d (%s n=%d seed=%d nonRigid=%v): auditor crossings %d, engine %d\n%v",
				d, label(), n, seed, nonRigid, got, want, rep.Problems)
		}
		enginePalette := 0
		for _, v := range res.Violations {
			if v.Kind == sim.VPalette {
				enginePalette++
			}
		}
		if got, want := rep.PaletteViolations, enginePalette; got != want {
			t.Errorf("draw %d (%s n=%d seed=%d): auditor palette violations %d, engine %d",
				d, label(), n, seed, got, want)
		}
		if got, want := rep.FinalCV, exact.CompleteVisibilityHybrid(res.Final); got != want {
			t.Errorf("draw %d (%s n=%d seed=%d): auditor FinalCV=%v, exact referee on engine final says %v",
				d, label(), n, seed, got, want)
		}
		if res.Reached && !rep.FinalCV {
			t.Errorf("draw %d (%s n=%d seed=%d): engine reached CV but auditor's exact check fails",
				d, label(), n, seed)
		}
	}
}

// TestDifferentialScenarioSweep extends the sweep into the stressor
// space: adversarial schedulers and crash faults (alone and composed)
// drawn over random sizes and seeds, every cell pushed through the same
// engine-vs-auditor parity gate. For crash runs the terminal predicate
// the engine's Reached refers to is SurvivorCV, not FinalCV — the
// crashed trio may well break full Complete Visibility while every
// survivor pair sees each other.
func TestDifferentialScenarioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario differential sweep in -short mode")
	}
	scenarios := []string{
		"sched=greedy-stale,window=768",
		"sched=starve-edge,window=256",
		"crash=2@0.25",
		"crash=1@0.3:moving",
		"crash=1@0.5:looked,jitter=1e-7",
		"sched=greedy-stale,window=768,crash=2@0.2",
	}
	rng := rand.New(rand.NewSource(20260807))
	const draws = 24
	for d := 0; d < draws; d++ {
		sc := scenarios[d%len(scenarios)]
		n := 8 + rng.Intn(17) // 8..24
		seed := int64(1 + rng.Intn(1000))

		cfg, err := scenario.Parse(sc)
		if err != nil {
			t.Fatalf("draw %d: Parse(%q): %v", d, sc, err)
		}
		opt := sim.DefaultOptions(sched.NewAsyncRandom(), seed)
		opt.MaxEpochs = 256
		opt.RecordTrace = true
		if err := cfg.Apply(&opt, n); err != nil {
			t.Fatalf("draw %d: Apply(%q, n=%d): %v", d, sc, n, err)
		}
		pts := config.Generate(config.Uniform, n, seed)
		res, err := sim.Run(core.NewLogVis(), pts, opt)
		if err != nil {
			t.Fatalf("draw %d (%q n=%d seed=%d): sim.Run: %v", d, sc, n, seed, err)
		}
		// Audit errors are parity failures in themselves: trace/engine
		// disagreement on the crashed set or final positions.
		rep, err := Audit(pts, core.NewLogVis().Palette(), res)
		if err != nil {
			t.Fatalf("draw %d (%q n=%d seed=%d): Audit: %v", d, sc, n, seed, err)
		}
		if got, want := rep.Colocations+rep.PassThroughs, res.Collisions; got != want {
			t.Errorf("draw %d (%q n=%d seed=%d): auditor collisions %d, engine %d\n%v",
				d, sc, n, seed, got, want, rep.Problems)
		}
		if got, want := rep.PathCrossings, res.PathCrossings; got != want {
			t.Errorf("draw %d (%q n=%d seed=%d): auditor crossings %d, engine %d\n%v",
				d, sc, n, seed, got, want, rep.Problems)
		}
		if got, want := rep.Crashes, len(res.Crashed); got != want {
			t.Errorf("draw %d (%q n=%d seed=%d): auditor crashes %d, engine %d",
				d, sc, n, seed, got, want)
		}
		if res.Reached && !rep.SurvivorCV {
			t.Errorf("draw %d (%q n=%d seed=%d): engine reached but auditor's survivor-CV fails",
				d, sc, n, seed)
		}
	}
}
