package verify_test

import (
	"testing"

	"luxvis/internal/baseline"
	"luxvis/internal/circlevis"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/verify"
)

func auditRun(t *testing.T, algo model.Algorithm, fam config.Family, n int, schedName string, seed int64) (*verify.Report, sim.Result) {
	t.Helper()
	pts := config.Generate(fam, n, seed)
	opt := sim.DefaultOptions(sched.ByName(schedName), seed)
	opt.RecordTrace = true
	opt.MaxEpochs = 2000
	res, err := sim.Run(algo, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Audit(pts, algo.Palette(), res)
	if err != nil {
		t.Fatal(err)
	}
	return rep, res
}

// The heart of the package: the auditor, rebuilding the run from the
// trace with its own bookkeeping, must agree with the engine's verdicts.
func TestAuditorAgreesWithEngine(t *testing.T) {
	algos := []model.Algorithm{core.NewLogVis(), baseline.NewSeqVis(), circlevis.NewCircleVis()}
	for _, algo := range algos {
		for _, schedName := range []string{"fsync", "async-random", "async-stale"} {
			rep, res := auditRun(t, algo, config.Uniform, 20, schedName, 9)
			label := algo.Name() + "/" + schedName
			if got, want := rep.Colocations+rep.PassThroughs, res.Collisions; got != want {
				t.Errorf("%s: auditor collisions %d, engine %d", label, got, want)
			}
			if got, want := rep.PathCrossings, res.PathCrossings; got != want {
				t.Errorf("%s: auditor crossings %d, engine %d\n%v", label, got, want, rep.Problems)
			}
			if rep.FinalCV != res.Reached {
				// Reached additionally requires quiescence; if the run
				// converged, the final CV must hold.
				if res.Reached && !rep.FinalCV {
					t.Errorf("%s: engine reached but auditor's CV fails", label)
				}
			}
		}
	}
}

// An algorithm engineered to violate safety must be flagged by the
// auditor just as the engine flags it.
type swapAlgo struct{}

func (swapAlgo) Name() string           { return "swap" }
func (swapAlgo) Palette() []model.Color { return []model.Color{model.Off, model.Done} }
func (swapAlgo) Compute(s model.Snapshot) model.Action {
	if s.Self.Color == model.Done || len(s.Others) != 1 {
		return model.Stay(s.Self.Pos, model.Done)
	}
	return model.MoveTo(s.Others[0].Pos, model.Done)
}

func TestAuditorFlagsSwap(t *testing.T) {
	pts := config.Generate(config.Line, 2, 1)
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	opt.RecordTrace = true
	opt.MaxEpochs = 5
	res, err := sim.Run(swapAlgo{}, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Audit(pts, swapAlgo{}.Palette(), res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Error("auditor passed a position-swapping run")
	}
	if rep.PathCrossings != res.PathCrossings {
		t.Errorf("auditor crossings %d, engine %d", rep.PathCrossings, res.PathCrossings)
	}
}

type badColorAlgo struct{}

func (badColorAlgo) Name() string           { return "badcolor" }
func (badColorAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (badColorAlgo) Compute(s model.Snapshot) model.Action {
	return model.Stay(s.Self.Pos, model.Beacon)
}

func TestAuditorFlagsPalette(t *testing.T) {
	pts := config.Generate(config.Uniform, 3, 1)
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	opt.RecordTrace = true
	opt.MaxEpochs = 3
	res, err := sim.Run(badColorAlgo{}, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Audit(pts, badColorAlgo{}.Palette(), res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PaletteViolations == 0 {
		t.Error("auditor missed the undeclared color")
	}
}

// stayPut never moves: crash-fault geometry tests need final positions
// that equal the start configuration.
type stayPut struct{}

func (stayPut) Name() string           { return "stay-put" }
func (stayPut) Palette() []model.Color { return []model.Color{model.Off} }
func (stayPut) Compute(s model.Snapshot) model.Action {
	return model.Stay(s.Self.Pos, model.Off)
}

// TestAuditorSurvivorCVSplit pins the two terminal predicates apart: a
// survivor triangle is mutually visible (SurvivorCV true, and the
// engine agrees by reporting Reached), while the crashed trio parked on
// a line keeps full Complete Visibility false (FinalCV false). The
// crashed-set cross-check runs implicitly — Audit errors on mismatch.
func TestAuditorSurvivorCVSplit(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(2, 3), // survivors: a triangle
		geom.Pt(10, 0), geom.Pt(12, 0), geom.Pt(14, 0), // crashed: collinear
	}
	opt := sim.DefaultOptions(sched.NewFSync(), 3)
	opt.RecordTrace = true
	opt.MaxEpochs = 64
	opt.Crashes = []sim.CrashSpec{
		{Robot: 3, AtEvent: 0, Stage: sched.Idle},
		{Robot: 4, AtEvent: 0, Stage: sched.Idle},
		{Robot: 5, AtEvent: 0, Stage: sched.Idle},
	}
	res, err := sim.Run(stayPut{}, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("engine did not reach survivor-CV: %+v", res)
	}
	rep, err := verify.Audit(pts, stayPut{}.Palette(), res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 3 {
		t.Errorf("auditor counted %d crashes, want 3", rep.Crashes)
	}
	if !rep.SurvivorCV {
		t.Error("auditor rejects survivor-CV the engine reached")
	}
	if rep.FinalCV {
		t.Error("auditor granted full CV despite the collinear crashed trio")
	}
}

// TestAuditorCrashMidMoveParity drives the paper algorithm into a
// mid-flight crash under a multi-sub-step scheduler and requires the
// auditor to agree with the engine on every count — in particular the
// crossing sweep, which must see the victim's traveled prefix exactly
// as the engine's end-of-move check did, not the planned path.
func TestAuditorCrashMidMoveParity(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		pts := config.Generate(config.Uniform, 16, seed)
		s := sched.NewAsyncRoundRobin()
		s.SubSteps = 4
		opt := sim.DefaultOptions(s, seed)
		opt.RecordTrace = true
		opt.MaxEpochs = 512
		opt.Crashes = []sim.CrashSpec{
			{Robot: 2, AtEvent: 40, Stage: sched.Moving},
			{Robot: 9, AtEvent: 200, Stage: sched.Looked},
		}
		res, err := sim.Run(core.NewLogVis(), pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := verify.Audit(pts, core.NewLogVis().Palette(), res)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := rep.Colocations+rep.PassThroughs, res.Collisions; got != want {
			t.Errorf("seed %d: auditor collisions %d, engine %d", seed, got, want)
		}
		if got, want := rep.PathCrossings, res.PathCrossings; got != want {
			t.Errorf("seed %d: auditor crossings %d, engine %d\n%v", seed, got, want, rep.Problems)
		}
		if len(rep.Crashed) != len(res.Crashed) {
			t.Errorf("seed %d: auditor crashed %v, engine %v", seed, rep.Crashed, res.Crashed)
		}
		if res.Reached && !rep.SurvivorCV {
			t.Errorf("seed %d: engine reached but auditor's survivor-CV fails", seed)
		}
	}
}

// TestCrossingSpanParityRegression pins cells that exposed a real
// auditor bug (found by the R1 robustness matrix): the auditor used to
// stamp a move's endEvent with the event that *flushed* it — the
// robot's next Look, its crash, or the end of the trace — instead of
// the move's last executed sub-step. The widened span declared pairs
// concurrent that the engine (correctly) saw as sequential, and the
// auditor over-counted crossings on exactly these seeds. Both sides now
// end a move at its final sub-step; the counts must agree.
func TestCrossingSpanParityRegression(t *testing.T) {
	for _, seed := range []int64{2, 3} {
		pts := config.Generate(config.Uniform, 24, seed)
		opt := sim.DefaultOptions(sched.NewAsyncRandom(), seed)
		opt.RecordTrace = true
		res, err := sim.Run(core.NewLogVis(), pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.PathCrossings == 0 {
			t.Fatalf("seed %d: expected a nonzero crossing residual for this regression cell", seed)
		}
		rep, err := verify.Audit(pts, core.NewLogVis().Palette(), res)
		if err != nil {
			t.Fatal(err)
		}
		if rep.PathCrossings != res.PathCrossings {
			t.Errorf("seed %d: auditor crossings %d, engine %d\n%v",
				seed, rep.PathCrossings, res.PathCrossings, rep.Problems)
		}
	}
}

// TestAuditorRejectsPostCrashActivity tampers with a genuine crash
// trace: any event under a crashed robot's name must be rejected — that
// is the auditor catching an engine that kept scheduling a dead robot.
func TestAuditorRejectsPostCrashActivity(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(2, 3), geom.Pt(6, 6)}
	opt := sim.DefaultOptions(sched.NewFSync(), 2)
	opt.RecordTrace = true
	opt.MaxEpochs = 32
	opt.Crashes = []sim.CrashSpec{{Robot: 1, AtEvent: 0, Stage: sched.Idle}}
	res, err := sim.Run(stayPut{}, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Audit(pts, stayPut{}.Palette(), res); err != nil {
		t.Fatalf("clean crash trace rejected: %v", err)
	}
	last := res.Trace[len(res.Trace)-1]
	res.Trace = append(res.Trace, sim.TraceEvent{
		Event: last.Event + 1, Robot: 1, Kind: "look", Pos: pts[1],
	})
	if _, err := verify.Audit(pts, stayPut{}.Palette(), res); err == nil {
		t.Error("auditor accepted a look by a crashed robot")
	}
}

func TestAuditErrors(t *testing.T) {
	pts := config.Generate(config.Uniform, 4, 1)
	// No trace recorded.
	res, err := sim.Run(core.NewLogVis(), pts, sim.DefaultOptions(sched.NewFSync(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Audit(pts, core.NewLogVis().Palette(), res); err == nil {
		t.Error("traceless result accepted")
	}
	// Wrong start size.
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	opt.RecordTrace = true
	res, err = sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Audit(pts[:2], core.NewLogVis().Palette(), res); err == nil {
		t.Error("mismatched start accepted")
	}
}
