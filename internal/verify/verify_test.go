package verify_test

import (
	"testing"

	"luxvis/internal/baseline"
	"luxvis/internal/circlevis"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/verify"
)

func auditRun(t *testing.T, algo model.Algorithm, fam config.Family, n int, schedName string, seed int64) (*verify.Report, sim.Result) {
	t.Helper()
	pts := config.Generate(fam, n, seed)
	opt := sim.DefaultOptions(sched.ByName(schedName), seed)
	opt.RecordTrace = true
	opt.MaxEpochs = 2000
	res, err := sim.Run(algo, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Audit(pts, algo.Palette(), res)
	if err != nil {
		t.Fatal(err)
	}
	return rep, res
}

// The heart of the package: the auditor, rebuilding the run from the
// trace with its own bookkeeping, must agree with the engine's verdicts.
func TestAuditorAgreesWithEngine(t *testing.T) {
	algos := []model.Algorithm{core.NewLogVis(), baseline.NewSeqVis(), circlevis.NewCircleVis()}
	for _, algo := range algos {
		for _, schedName := range []string{"fsync", "async-random", "async-stale"} {
			rep, res := auditRun(t, algo, config.Uniform, 20, schedName, 9)
			label := algo.Name() + "/" + schedName
			if got, want := rep.Colocations+rep.PassThroughs, res.Collisions; got != want {
				t.Errorf("%s: auditor collisions %d, engine %d", label, got, want)
			}
			if got, want := rep.PathCrossings, res.PathCrossings; got != want {
				t.Errorf("%s: auditor crossings %d, engine %d\n%v", label, got, want, rep.Problems)
			}
			if rep.FinalCV != res.Reached {
				// Reached additionally requires quiescence; if the run
				// converged, the final CV must hold.
				if res.Reached && !rep.FinalCV {
					t.Errorf("%s: engine reached but auditor's CV fails", label)
				}
			}
		}
	}
}

// An algorithm engineered to violate safety must be flagged by the
// auditor just as the engine flags it.
type swapAlgo struct{}

func (swapAlgo) Name() string           { return "swap" }
func (swapAlgo) Palette() []model.Color { return []model.Color{model.Off, model.Done} }
func (swapAlgo) Compute(s model.Snapshot) model.Action {
	if s.Self.Color == model.Done || len(s.Others) != 1 {
		return model.Stay(s.Self.Pos, model.Done)
	}
	return model.MoveTo(s.Others[0].Pos, model.Done)
}

func TestAuditorFlagsSwap(t *testing.T) {
	pts := config.Generate(config.Line, 2, 1)
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	opt.RecordTrace = true
	opt.MaxEpochs = 5
	res, err := sim.Run(swapAlgo{}, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Audit(pts, swapAlgo{}.Palette(), res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Error("auditor passed a position-swapping run")
	}
	if rep.PathCrossings != res.PathCrossings {
		t.Errorf("auditor crossings %d, engine %d", rep.PathCrossings, res.PathCrossings)
	}
}

type badColorAlgo struct{}

func (badColorAlgo) Name() string           { return "badcolor" }
func (badColorAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (badColorAlgo) Compute(s model.Snapshot) model.Action {
	return model.Stay(s.Self.Pos, model.Beacon)
}

func TestAuditorFlagsPalette(t *testing.T) {
	pts := config.Generate(config.Uniform, 3, 1)
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	opt.RecordTrace = true
	opt.MaxEpochs = 3
	res, err := sim.Run(badColorAlgo{}, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Audit(pts, badColorAlgo{}.Palette(), res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PaletteViolations == 0 {
		t.Error("auditor missed the undeclared color")
	}
}

func TestAuditErrors(t *testing.T) {
	pts := config.Generate(config.Uniform, 4, 1)
	// No trace recorded.
	res, err := sim.Run(core.NewLogVis(), pts, sim.DefaultOptions(sched.NewFSync(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Audit(pts, core.NewLogVis().Palette(), res); err == nil {
		t.Error("traceless result accepted")
	}
	// Wrong start size.
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	opt.RecordTrace = true
	res, err = sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Audit(pts[:2], core.NewLogVis().Palette(), res); err == nil {
		t.Error("mismatched start accepted")
	}
}
