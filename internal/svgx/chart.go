package svgx

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line of a chart.
type Series struct {
	Name   string
	Xs, Ys []float64
	// Color is any SVG color; empty picks from the default cycle.
	Color string
}

// ChartOptions configures RenderLineChart.
type ChartOptions struct {
	Title  string
	XLabel string
	YLabel string
	Width  float64 // default 640
	Height float64 // default 420
	// LogX plots x on a log₂ axis — the natural axis for N sweeps.
	LogX bool
}

var defaultSeriesColors = []string{
	"#1a73e8", "#d93025", "#188038", "#f9ab00", "#9c27b0", "#00acc1",
}

// RenderLineChart renders series as an SVG line chart with axes, ticks
// and a legend. It is deliberately minimal — enough to publish the
// experiment figures without any dependency — but handles the
// essentials: per-series colors, log₂ x-axes, and sane tick placement.
func RenderLineChart(w io.Writer, series []Series, opt ChartOptions) error {
	if len(series) == 0 {
		return fmt.Errorf("svgx: chart with no series")
	}
	if opt.Width <= 0 {
		opt.Width = 640
	}
	if opt.Height <= 0 {
		opt.Height = 420
	}
	const (
		padL = 64.0
		padR = 24.0
		padT = 40.0
		padB = 52.0
	)
	tx := func(x float64) float64 {
		if opt.LogX {
			return math.Log2(x)
		}
		return x
	}

	// Data window.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y axis anchored at zero
	for _, s := range series {
		if len(s.Xs) != len(s.Ys) {
			return fmt.Errorf("svgx: series %q length mismatch", s.Name)
		}
		for i := range s.Xs {
			x := tx(s.Xs[i])
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			maxY = math.Max(maxY, s.Ys[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("svgx: chart with empty series")
	}
	// Epsilon-banded so a visually-degenerate span (all x within float
	// noise) also widens instead of dividing the pixel scale by ~0.
	if maxX-minX <= 1e-9 {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	maxY *= 1.08 // headroom

	plotW := opt.Width - padL - padR
	plotH := opt.Height - padT - padB
	px := func(x float64) float64 { return padL + (tx(x)-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return padT + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.Width, opt.Height, opt.Width, opt.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%.0f" y="24" font-size="15" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		opt.Width/2, escape(opt.Title))
	fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-size="12" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		padL+plotW/2, opt.Height-10, escape(opt.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.0f" font-size="12" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 16 %.0f)">%s</text>`+"\n",
		padT+plotH/2, padT+plotH/2, escape(opt.YLabel))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		padL, padT+plotH, padL+plotW, padT+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		padL, padT, padL, padT+plotH)

	// X ticks: at data points for log axes, else ~6 even ticks.
	xticks := map[float64]bool{}
	if opt.LogX {
		for _, s := range series {
			for _, x := range s.Xs {
				xticks[x] = true
			}
		}
	} else {
		step := niceStep((maxX - minX) / 6)
		for v := math.Ceil(minX/step) * step; v <= maxX+1e-9; v += step {
			xticks[v] = true
		}
	}
	for v := range xticks {
		x := px(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			x, padT+plotH, x, padT+plotH+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			x, padT+plotH+16, fmtTick(v))
	}
	// Y ticks.
	ystep := niceStep((maxY - minY) / 6)
	for v := math.Ceil(minY/ystep) * ystep; v <= maxY+1e-9; v += ystep {
		y := py(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dadce0"/>`+"\n",
			padL, y, padL+plotW, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif" text-anchor="end">%s</text>`+"\n",
			padL-6, y+3, fmtTick(v))
	}

	// Series polylines + markers + legend.
	for i, s := range series {
		color := s.Color
		if color == "" {
			color = defaultSeriesColors[i%len(defaultSeriesColors)]
		}
		var pl strings.Builder
		for j := range s.Xs {
			if j > 0 {
				pl.WriteByte(' ')
			}
			fmt.Fprintf(&pl, "%.1f,%.1f", px(s.Xs[j]), py(s.Ys[j]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			pl.String(), color)
		for j := range s.Xs {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n",
				px(s.Xs[j]), py(s.Ys[j]), color)
		}
		ly := padT + 14 + float64(i)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			padL+plotW-130, ly-4, padL+plotW-106, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			padL+plotW-100, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// niceStep rounds a raw step to 1/2/5×10^k.
func niceStep(raw float64) float64 {
	if raw <= 0 || math.IsInf(raw, 0) || math.IsNaN(raw) {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag < 1.5:
		return mag
	case raw/mag < 3.5:
		return 2 * mag
	case raw/mag < 7.5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// fmtTick formats a tick value without trailing noise.
func fmtTick(v float64) string {
	// Trunc(v) == v is the canonical exact integrality test; an epsilon
	// band would print 2.0000000001 as "2" and lie on the axis.
	//lint:allow floateq exact integrality test for tick labels
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}
