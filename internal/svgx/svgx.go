// Package svgx is a minimal SVG writer used to render configurations and
// motion traces as figures. It emits plain SVG 1.1 with no external
// dependencies; the visualizer CLI (cmd/visviz) and the gallery example
// build on it.
package svgx

import (
	"fmt"
	"io"
	"math"
	"strings"

	"luxvis/internal/geom"
	"luxvis/internal/model"
)

// Canvas accumulates SVG elements in a world coordinate system and
// renders them into a fixed-size viewport with padding.
type Canvas struct {
	width, height float64
	pad           float64
	min, max      geom.Point
	haveBounds    bool
	body          strings.Builder
}

// NewCanvas creates a canvas with the given pixel viewport.
func NewCanvas(width, height float64) *Canvas {
	return &Canvas{width: width, height: height, pad: 24}
}

// FitTo sets the world-coordinate window that maps to the viewport.
// Without a call to FitTo the canvas panics on the first draw — the
// mapping must be explicit.
func (c *Canvas) FitTo(pts []geom.Point) {
	if len(pts) == 0 {
		c.min, c.max = geom.Pt(0, 0), geom.Pt(1, 1)
		c.haveBounds = true
		return
	}
	c.min, c.max = geom.BoundingBox(pts)
	// Avoid a degenerate window for single points or lines.
	if c.max.X-c.min.X < 1e-9 {
		c.min.X -= 0.5
		c.max.X += 0.5
	}
	if c.max.Y-c.min.Y < 1e-9 {
		c.min.Y -= 0.5
		c.max.Y += 0.5
	}
	c.haveBounds = true
}

// xy maps a world point to viewport coordinates (y axis flipped so the
// world's +Y points up on screen).
func (c *Canvas) xy(p geom.Point) (float64, float64) {
	if !c.haveBounds {
		panic("svgx: draw before FitTo")
	}
	sx := (c.width - 2*c.pad) / (c.max.X - c.min.X)
	sy := (c.height - 2*c.pad) / (c.max.Y - c.min.Y)
	s := math.Min(sx, sy)
	x := c.pad + (p.X-c.min.X)*s
	y := c.height - c.pad - (p.Y-c.min.Y)*s
	return x, y
}

// Circle draws a filled circle at world point p.
func (c *Canvas) Circle(p geom.Point, r float64, fill string) {
	x, y := c.xy(p)
	fmt.Fprintf(&c.body, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", x, y, r, fill)
}

// Line draws a stroked segment between world points a and b.
func (c *Canvas) Line(a, b geom.Point, stroke string, width float64) {
	x1, y1 := c.xy(a)
	x2, y2 := c.xy(b)
	fmt.Fprintf(&c.body,
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

// Polygon draws a stroked, unfilled polygon through the world points.
func (c *Canvas) Polygon(pts []geom.Point, stroke string, width float64) {
	if len(pts) < 2 {
		return
	}
	var sb strings.Builder
	for i, p := range pts {
		x, y := c.xy(p)
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.2f,%.2f", x, y)
	}
	fmt.Fprintf(&c.body,
		`<polygon points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		sb.String(), stroke, width)
}

// Text draws a small annotation at world point p.
func (c *Canvas) Text(p geom.Point, s string) {
	x, y := c.xy(p)
	fmt.Fprintf(&c.body,
		`<text x="%.2f" y="%.2f" font-size="10" font-family="monospace">%s</text>`+"\n",
		x, y, escape(s))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// WriteTo renders the accumulated elements as a complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	doc := fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+
			"\n<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n%s</svg>\n",
		c.width, c.height, c.width, c.height, c.body.String())
	n, err := io.WriteString(w, doc)
	return int64(n), err
}

// ColorFill maps a robot light color to a display fill.
func ColorFill(col model.Color) string {
	switch col {
	case model.Off:
		return "#9aa0a6"
	case model.Line:
		return "#795548"
	case model.Corner:
		return "#1a73e8"
	case model.Side:
		return "#f9ab00"
	case model.Interior:
		return "#d93025"
	case model.Transit:
		return "#9c27b0"
	case model.Beacon:
		return "#00acc1"
	case model.Done:
		return "#188038"
	default:
		return "black"
	}
}

// RenderConfiguration draws a swarm snapshot: hull outline, robots
// colored by light.
func RenderConfiguration(w io.Writer, pts []geom.Point, cols []model.Color, width, height float64) error {
	c := NewCanvas(width, height)
	c.FitTo(pts)
	hull := geom.ConvexHull(pts)
	if !hull.Degenerate() {
		c.Polygon(hull.Corners, "#dadce0", 1)
	}
	for i, p := range pts {
		fill := "#9aa0a6"
		if cols != nil && i < len(cols) {
			fill = ColorFill(cols[i])
		}
		c.Circle(p, 3, fill)
	}
	_, err := c.WriteTo(w)
	return err
}

// RenderTrajectories draws per-robot motion polylines from start to
// final positions, with starts hollow-ish grey and finals colored.
func RenderTrajectories(w io.Writer, paths [][]geom.Point, finalCols []model.Color, width, height float64) error {
	c := NewCanvas(width, height)
	var all []geom.Point
	for _, path := range paths {
		all = append(all, path...)
	}
	c.FitTo(all)
	for _, path := range paths {
		for i := 1; i < len(path); i++ {
			c.Line(path[i-1], path[i], "#dadce0", 0.8)
		}
	}
	for i, path := range paths {
		if len(path) == 0 {
			continue
		}
		c.Circle(path[0], 2, "#bdc1c6")
		fill := "#188038"
		if finalCols != nil && i < len(finalCols) {
			fill = ColorFill(finalCols[i])
		}
		c.Circle(path[len(path)-1], 3, fill)
	}
	_, err := c.WriteTo(w)
	return err
}
