package svgx

import (
	"bytes"
	"strings"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/model"
)

func TestCanvasProducesValidSVG(t *testing.T) {
	c := NewCanvas(400, 300)
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10), geom.Pt(5, 3)}
	c.FitTo(pts)
	c.Circle(pts[0], 3, "red")
	c.Line(pts[0], pts[1], "blue", 1)
	c.Polygon(pts, "green", 2)
	c.Text(pts[2], "a<b&c")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "<line", "<polygon", "&lt;b&amp;c"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestCanvasYAxisFlipped(t *testing.T) {
	c := NewCanvas(100, 100)
	c.FitTo([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	_, yLow := c.xy(geom.Pt(0, 0))
	_, yHigh := c.xy(geom.Pt(0, 1))
	if yHigh >= yLow {
		t.Errorf("world +Y should render upward: y(0)=%v y(1)=%v", yLow, yHigh)
	}
}

func TestCanvasPanicsWithoutFit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("draw before FitTo did not panic")
		}
	}()
	NewCanvas(10, 10).Circle(geom.Pt(0, 0), 1, "red")
}

func TestFitToDegenerate(t *testing.T) {
	c := NewCanvas(100, 100)
	c.FitTo([]geom.Point{geom.Pt(5, 5)}) // single point: no zero division
	x, y := c.xy(geom.Pt(5, 5))
	if x < 0 || x > 100 || y < 0 || y > 100 {
		t.Errorf("degenerate fit maps outside viewport: %v %v", x, y)
	}
	c.FitTo(nil) // empty: defaults
}

func TestColorFill(t *testing.T) {
	seen := map[string]bool{}
	for c := model.Color(0); c < model.NumColors; c++ {
		fill := ColorFill(c)
		if fill == "" {
			t.Errorf("empty fill for %v", c)
		}
		if seen[fill] {
			t.Errorf("duplicate fill %q", fill)
		}
		seen[fill] = true
	}
}

func TestRenderConfiguration(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)}
	cols := []model.Color{model.Corner, model.Corner, model.Done}
	var buf bytes.Buffer
	if err := RenderConfiguration(&buf, pts, cols, 300, 300); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<polygon") {
		t.Error("hull outline missing")
	}
	if got := strings.Count(buf.String(), "<circle"); got != 3 {
		t.Errorf("rendered %d circles", got)
	}
}

func TestRenderTrajectories(t *testing.T) {
	paths := [][]geom.Point{
		{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(10, 5)},
		{geom.Pt(10, 0)},
	}
	var buf bytes.Buffer
	if err := RenderTrajectories(&buf, paths, nil, 300, 300); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "<line"); got != 2 {
		t.Errorf("rendered %d path lines", got)
	}
}

func TestRenderLineChart(t *testing.T) {
	var buf bytes.Buffer
	err := RenderLineChart(&buf, []Series{
		{Name: "logvis", Xs: []float64{8, 16, 32, 64}, Ys: []float64{5, 7, 9, 13}},
		{Name: "seqvis", Xs: []float64{8, 16, 32, 64}, Ys: []float64{5, 9, 15, 26}},
	}, ChartOptions{Title: "F1", XLabel: "N", YLabel: "epochs", LogX: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "logvis", "seqvis", "epochs"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestRenderLineChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderLineChart(&buf, nil, ChartOptions{}); err == nil {
		t.Error("empty chart accepted")
	}
	err := RenderLineChart(&buf, []Series{{Name: "x", Xs: []float64{1}, Ys: []float64{1, 2}}}, ChartOptions{})
	if err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{0.7: 0.5, 1.2: 1, 3: 2, 6: 5, 9: 10, 70: 50}
	for in, want := range cases {
		if got := niceStep(in); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", in, got, want)
		}
	}
	if got := niceStep(0); got != 1 {
		t.Errorf("niceStep(0) = %v", got)
	}
}
