// Package luxvis is a simulator and algorithm library for the "robots
// with lights" model of distributed computing, built as a reproduction of
//
//	Sharma, Vaidyanathan, Trahan, Busch, Rai:
//	"O(log N)-Time Complete Visibility for Asynchronous Robots with
//	Lights", IPDPS 2017.
//
// It provides:
//
//   - the Look-Compute-Move robot model with obstructed visibility and
//     colored lights (N robots see each other unless a third robot sits
//     on the segment between them);
//   - FSYNC, SSYNC and ASYNC schedulers, including an adversarial
//     staleness-maximizing ASYNC scheduler, over a discrete-event engine
//     that verifies collision-freedom and path-disjointness with exact
//     rational arithmetic;
//   - LogVis, the paper's O(log N)-time O(1)-color asynchronous Complete
//     Visibility algorithm (reconstruction — see DESIGN.md), and SeqVis,
//     the Θ(N)-epoch asynchronous translation of the semi-synchronous
//     algorithm that the paper compares against;
//   - a true-concurrency runtime (one goroutine per robot) running the
//     same algorithms unmodified;
//   - workload generators, metrics, growth-law fitting, SVG rendering
//     and the experiment harness behind EXPERIMENTS.md.
//
// The quickest way in:
//
//	pts := luxvis.Generate(luxvis.Uniform, 64, 1)
//	res, err := luxvis.Run(luxvis.NewLogVis(), pts,
//	    luxvis.DefaultOptions(luxvis.NewAsyncRandom(), 1))
//	// res.Reached, res.Epochs, res.Collisions, ...
//
// This package is a thin façade: the implementation lives in internal/
// packages, re-exported here as type aliases so downstream code needs
// only this import.
package luxvis

import (
	"context"
	"io"

	"luxvis/internal/baseline"
	"luxvis/internal/circlevis"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/obs"
	"luxvis/internal/rt"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

// ---------------------------------------------------------------------
// Geometry

// Point is a point in the plane.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// CompleteVisibility reports whether every pair of robots at pts is
// mutually visible, decided with exact rational arithmetic.
func CompleteVisibility(pts []Point) bool { return exact.CompleteVisibilityHybrid(pts) }

// StrictlyConvexPosition reports whether all points are distinct strict
// corners of their convex hull — the terminal configuration shape of the
// Complete Visibility algorithms.
func StrictlyConvexPosition(pts []Point) bool { return geom.StrictlyConvexPosition(pts) }

// VisibleSet returns the indices of the robots visible from pts[i]
// under obstructed visibility, in O(n log n). For hot loops prefer a
// RowCache or a VisibilityKernel snapshot, which compute identical rows
// without allocating.
func VisibleSet(pts []Point, i int) []int { return geom.VisibleSetFast(pts, i) }

// ---------------------------------------------------------------------
// Visibility kernel

// VisibilityKernel batches visibility computation: it owns per-worker
// arenas and fans full-snapshot passes out across cores. Close it when
// done. The engine creates one per run internally; construct one
// directly to drive VisibilitySnapshot or the batched Complete
// Visibility check yourself.
type VisibilityKernel = geom.Kernel

// NewVisibilityKernel returns a kernel with the given worker count
// (≤ 0 selects the host's core count).
func NewVisibilityKernel(workers int) *VisibilityKernel { return geom.NewKernel(workers) }

// VisibilitySnapshot is a kernel-backed view of all N visible sets of
// one evolving configuration: rows are computed on demand, reused
// arenas make the steady state allocation-free, and after a single-
// robot Update only the rows the move can affect are recomputed.
type VisibilitySnapshot = geom.Snapshot

// VisibilitySnapshotStats reports a snapshot's computed-versus-reused
// row counters.
type VisibilitySnapshotStats = geom.SnapshotStats

// RowCache computes single visibility rows with reusable buffers — the
// zero-allocation single-observer counterpart of a kernel snapshot (one
// per goroutine; the concurrent runtime keeps one per robot).
type RowCache = geom.RowCache

// KernelStats summarizes the visibility kernel's work during an engine
// run (see Result.Kernel).
type KernelStats = sim.KernelStats

// ---------------------------------------------------------------------
// Model

// Color is a robot light color.
type Color = model.Color

// The shared light palette (algorithms use subsets).
const (
	Off      = model.Off
	Line     = model.Line
	Corner   = model.Corner
	Side     = model.Side
	Interior = model.Interior
	Transit  = model.Transit
	Beacon   = model.Beacon
	Done     = model.Done
)

// Snapshot is what a robot sees during Look.
type Snapshot = model.Snapshot

// RobotView is one visible robot in a Snapshot.
type RobotView = model.RobotView

// Action is a robot's Compute result.
type Action = model.Action

// Algorithm is a distributed robot algorithm: a pure function from
// snapshots to actions.
type Algorithm = model.Algorithm

// ---------------------------------------------------------------------
// Algorithms

// LogVis is the paper's O(log N)-time, O(1)-color asynchronous Complete
// Visibility algorithm.
type LogVis = core.LogVis

// NewLogVis returns the paper's algorithm with default tunables.
func NewLogVis() *LogVis { return core.NewLogVis() }

// SeqVis is the Θ(N)-epoch asynchronous translation of the
// semi-synchronous algorithm — the paper's comparison baseline.
type SeqVis = baseline.SeqVis

// NewSeqVis returns the baseline algorithm.
func NewSeqVis() *SeqVis { return baseline.NewSeqVis() }

// CircleVis is a reference strategy that converges robots onto the
// smallest enclosing circle of their view (move-onto-a-common-circle
// family); included as a structurally different comparison point.
type CircleVis = circlevis.CircleVis

// NewCircleVis returns the CircleVis reference algorithm.
func NewCircleVis() *CircleVis { return circlevis.NewCircleVis() }

// ---------------------------------------------------------------------
// Schedulers

// Scheduler decides robot activation order.
type Scheduler = sched.Scheduler

// NewFSync returns the fully synchronous scheduler.
func NewFSync() Scheduler { return sched.NewFSync() }

// NewSSync returns the semi-synchronous scheduler with per-robot
// selection probability p (p ≤ 0 or > 1 defaults to 0.5).
func NewSSync(p float64) Scheduler { return sched.NewSSync(p) }

// NewAsyncRandom returns the randomized asynchronous scheduler.
func NewAsyncRandom() Scheduler { return sched.NewAsyncRandom() }

// NewAsyncStale returns the staleness-maximizing asynchronous adversary.
func NewAsyncStale() Scheduler { return sched.NewAsyncStale() }

// NewAsyncRoundRobin returns the deterministic round-robin asynchronous
// scheduler (reproducible without a seed; kind to algorithms).
func NewAsyncRoundRobin() Scheduler { return sched.NewAsyncRoundRobin() }

// SchedulerByName resolves a scheduler by its table name ("fsync",
// "ssync", "async-random", "async-stale", "async-rr"). It panics on
// unknown names; prefer SchedulerByNameErr for user-supplied input.
func SchedulerByName(name string) Scheduler { return sched.ByName(name) }

// SchedulerByNameErr resolves a scheduler by its table name, returning
// an error that lists the known names on a miss.
func SchedulerByNameErr(name string) (Scheduler, error) { return sched.ByNameErr(name) }

// SchedulerNames lists the scheduler names in canonical order.
func SchedulerNames() []string { return sched.Names() }

// ---------------------------------------------------------------------
// Simulation

// Options configures a simulation run.
type Options = sim.Options

// Result reports a simulation run.
type Result = sim.Result

// DefaultOptions returns runnable Options for the given scheduler and
// seed.
func DefaultOptions(s Scheduler, seed int64) Options { return sim.DefaultOptions(s, seed) }

// Run executes an algorithm from a start configuration under the
// discrete-event engine, with exact safety verification.
func Run(algo Algorithm, start []Point, opt Options) (Result, error) {
	return sim.Run(algo, start, opt)
}

// RunCtx is Run with caller cancellation: once ctx is done the engine
// aborts at the next epoch boundary, returning the deterministic
// prefix computed so far alongside ctx's error.
func RunCtx(ctx context.Context, algo Algorithm, start []Point, opt Options) (Result, error) {
	return sim.RunCtx(ctx, algo, start, opt)
}

// ConcurrentOptions configures a true-concurrency run.
type ConcurrentOptions = rt.Options

// ConcurrentResult reports a true-concurrency run.
type ConcurrentResult = rt.Result

// RunConcurrent executes an algorithm with one goroutine per robot —
// genuine asynchrony from scheduler jitter instead of simulated events.
func RunConcurrent(algo Algorithm, start []Point, opt ConcurrentOptions) (ConcurrentResult, error) {
	return rt.Run(algo, start, opt)
}

// RunConcurrentCtx is RunConcurrent with caller cancellation layered
// under the MaxWall clock: whichever expires first stops the run.
func RunConcurrentCtx(ctx context.Context, algo Algorithm, start []Point, opt ConcurrentOptions) (ConcurrentResult, error) {
	return rt.RunCtx(ctx, algo, start, opt)
}

// ---------------------------------------------------------------------
// Observability

// Observer receives engine callbacks during a run; set Options.Observer.
// A nil observer costs nothing on the simulation hot path.
type Observer = sim.Observer

// RunInfo identifies a run at Observer.RunStart.
type RunInfo = sim.RunInfo

// CycleInfo describes one completed LCM cycle.
type CycleInfo = sim.CycleInfo

// MoveInfo describes one completed relocation.
type MoveInfo = sim.MoveInfo

// EpochSample is one epoch-boundary progress sample.
type EpochSample = sim.EpochSample

// Phase is an algorithm-phase attribution bucket.
type Phase = sim.Phase

// The phase attribution buckets.
const (
	PhaseOther    = sim.PhaseOther
	PhaseInterior = sim.PhaseInterior
	PhaseEdge     = sim.PhaseEdge
	PhaseCorner   = sim.PhaseCorner
)

// PhaseOf maps a robot light color to its phase attribution.
func PhaseOf(c Color) Phase { return sim.PhaseOf(c) }

// ObserverFuncs adapts a sparse set of callback functions to Observer;
// nil fields are no-ops.
type ObserverFuncs = obs.Funcs

// MultiObserver combines observers into one; nil members are dropped and
// zero remaining observers yield nil (preserving the engine fast path).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// FlightRecorder keeps the last K engine events and dumps a JSONL
// snapshot on the first violation or an aborted run.
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder returns a FlightRecorder retaining k events (k <= 0
// selects the default) that dumps to sink.
func NewFlightRecorder(k int, sink io.Writer) *FlightRecorder { return obs.NewFlightRecorder(k, sink) }

// EngineTotals accumulates lifetime engine counters across runs with
// lock-free atomics; attach it to many runs' Options.Observer.
type EngineTotals = obs.EngineTotals

// NewEngineTotals returns a zeroed accumulator.
func NewEngineTotals() *EngineTotals { return obs.NewEngineTotals() }

// TelemetryWriter streams epoch-granular run telemetry as JSONL.
type TelemetryWriter = obs.TelemetryWriter

// NewTelemetryWriter returns a TelemetryWriter emitting to w.
func NewTelemetryWriter(w io.Writer) *TelemetryWriter { return obs.NewTelemetryWriter(w) }

// ---------------------------------------------------------------------
// Workloads

// Family names an initial-configuration generator.
type Family = config.Family

// The workload families.
const (
	Uniform     = config.Uniform
	Clustered   = config.Clustered
	LineConfig  = config.Line
	LineEven    = config.LineEven
	CircleStart = config.Circle
	Onion       = config.Onion
	Grid        = config.Grid
	TwoClusters = config.TwoClusters
	Wedge       = config.Wedge
	Spokes      = config.Spokes
)

// Families lists all workload families.
func Families() []Family { return config.Families() }

// Generate returns n distinct robot positions of the given family,
// deterministic per (family, n, seed).
func Generate(f Family, n int, seed int64) []Point { return config.Generate(f, n, seed) }
