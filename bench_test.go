package luxvis_test

// One benchmark per table/figure of the reproduction (see DESIGN.md and
// EXPERIMENTS.md). Each benchmark regenerates its experiment at the
// quick scale and reports the experiment's headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the entire
// evaluation in one command. Run cmd/visbench for the full-scale tables.

import (
	"testing"

	"luxvis"
	"luxvis/internal/exp"
)

func benchCfg() exp.Config {
	return exp.Config{Quick: true, Seeds: 2}
}

// BenchmarkT1_LogVisAsyncEpochs regenerates Table T1: LogVis epochs
// against N under the asynchronous scheduler, with the fitted growth
// law. Metric: mean epochs at the largest quick N, and the log-fit R².
func BenchmarkT1_LogVisAsyncEpochs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.T1LogGrowth(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Cells[len(res.Cells)-1]
		b.ReportMetric(last.Stats.Epochs.Mean, "epochs@maxN")
		b.ReportMetric(res.Growth.Log.R2, "logfit-R2")
	}
}

// BenchmarkT2_ColorCount regenerates Table T2: the number of distinct
// colors lit must not grow with N. Metric: max colors observed.
func BenchmarkT2_ColorCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.T2Colors(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MaxColors), "colors-max")
		b.ReportMetric(float64(res.Palette), "palette")
	}
}

// BenchmarkT3_CollisionFree regenerates Table T3: exact-arithmetic
// safety tallies across all schedulers. Metrics: collisions (claim: 0)
// and concurrent path crossings.
func BenchmarkT3_CollisionFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.T3Safety(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Collisions), "collisions")
		b.ReportMetric(float64(res.PathCrossings), "path-crossings")
	}
}

// BenchmarkT4_Correctness regenerates Table T4: Complete Visibility is
// reached from every workload family. Metric: fraction of runs reached.
func BenchmarkT4_Correctness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.T4Correctness(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		runs, reached := 0, 0
		for _, row := range res.Rows {
			runs += row.Runs
			reached += row.Reached
		}
		b.ReportMetric(float64(reached)/float64(runs), "reached-frac")
	}
}

// BenchmarkF1_VsBaseline regenerates Figure F1, the paper's headline
// comparison: O(log N) LogVis against the Θ(N) translation of the
// semi-synchronous algorithm. Metric: the epoch ratio at the largest N.
func BenchmarkF1_VsBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F1VsBaseline(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupAtMax, "speedup@maxN")
	}
}

// BenchmarkF2_Schedulers regenerates Figure F2: epochs per scheduler.
// Metric: the async-stale / fsync epoch ratio (the cost of asynchrony).
func BenchmarkF2_Schedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F2Schedulers(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if f := res.Rows["fsync"]; f > 0 {
			b.ReportMetric(res.Rows["async-stale"]/f, "stale/fsync")
		}
	}
}

// BenchmarkF3_BDCP regenerates Figure F3: Beacon-Directed Curve
// Positioning rounds against k. Metric: rounds at the largest quick k.
func BenchmarkF3_BDCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F3BDCP(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rounds[len(res.Rounds)-1], "rounds@maxK")
	}
}

// BenchmarkF4_Workloads regenerates Figure F4: epochs per workload
// family. Metric: the worst family's mean epochs.
func BenchmarkF4_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F4Workloads(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, e := range res.Rows {
			if e > worst {
				worst = e
			}
		}
		b.ReportMetric(worst, "epochs-worst-family")
	}
}

// BenchmarkF5_Goroutines regenerates Figure F5: the goroutine-per-robot
// runtime. Metric: wall-clock at the largest quick N, in milliseconds.
func BenchmarkF5_Goroutines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F5Goroutines(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Wall[len(res.Wall)-1].Milliseconds()), "wall-ms@maxN")
	}
}

// BenchmarkF6_Movement regenerates Figure F6: movement cost per robot,
// LogVis vs the baseline. Metric: LogVis distance per robot at max N.
func BenchmarkF6_Movement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F6Movement(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LogVisDist[len(res.LogVisDist)-1], "dist/robot@maxN")
	}
}

// BenchmarkEngineRun measures raw engine throughput: one full LogVis run
// at N=64 per iteration (allocation profile included via -benchmem).
func BenchmarkEngineRun(b *testing.B) {
	pts := luxvis.Generate(luxvis.Uniform, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := luxvis.Run(luxvis.NewLogVis(), pts,
			luxvis.DefaultOptions(luxvis.NewAsyncRandom(), int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Reached {
			b.Fatalf("iteration %d did not converge", i)
		}
	}
}

// BenchmarkEngineRunNoopObserver is BenchmarkEngineRun with a no-op
// observer attached: the difference between the two is the whole cost of
// the observation layer when someone listens but does nothing. Compare
// against BenchmarkEngineRun (nil Observer) to verify the disabled path
// stays free.
func BenchmarkEngineRunNoopObserver(b *testing.B) {
	pts := luxvis.Generate(luxvis.Uniform, 64, 1)
	noop := &luxvis.ObserverFuncs{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := luxvis.DefaultOptions(luxvis.NewAsyncRandom(), int64(i+1))
		opt.Observer = noop
		res, err := luxvis.Run(luxvis.NewLogVis(), pts, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Reached {
			b.Fatalf("iteration %d did not converge", i)
		}
	}
}

// BenchmarkA1_SagittaAblation regenerates ablation A1: the quadratic
// landing-sagitta law against the naive constant fraction. Metric: the
// fraction of ablated runs that still converge.
func BenchmarkA1_SagittaAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.A1Sagitta(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		runs, reached := 0, 0
		for _, c := range res.Cells {
			if c.Variant != "quadratic (ours)" {
				runs += c.Runs
				reached += c.Reached
			}
		}
		if runs > 0 {
			b.ReportMetric(float64(reached)/float64(runs), "ablated-reached-frac")
		}
	}
}

// BenchmarkA2_GuardAblation regenerates ablation A2: the Transit guard
// against none. Metric: crossing inflation factor without the guard.
func BenchmarkA2_GuardAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.A2Guard(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var ours, ablated int
		for _, c := range res.Cells {
			if c.Variant == "guarded (ours)" {
				ours += c.Cross
			} else {
				ablated += c.Cross
			}
		}
		if ours > 0 {
			b.ReportMetric(float64(ablated)/float64(ours), "crossing-inflation")
		}
	}
}

// BenchmarkF7_Convergence regenerates Figure F7: the per-epoch hull
// composition of one run. Metric: epochs until the interior is empty.
func BenchmarkF7_Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F7Convergence(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		drained := 0
		for _, s := range res.Samples {
			if s.Interior == 0 {
				drained = s.Epoch
				break
			}
		}
		b.ReportMetric(float64(drained), "epochs-to-drain")
	}
}

// BenchmarkF8_ThreeWay regenerates Figure F8: LogVis vs the CircleVis
// reference strategy. Metric: the epochs ratio at the largest quick N.
func BenchmarkF8_ThreeWay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F8ThreeWay(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Ns) - 1
		if res.LogVis[last] > 0 {
			b.ReportMetric(res.CircleVis[last]/res.LogVis[last], "circlevis/logvis")
		}
	}
}

// BenchmarkF9_NonRigid regenerates Figure F9: the non-rigid motion
// stress. Metric: epoch slowdown factor at the largest quick N.
func BenchmarkF9_NonRigid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.F9NonRigid(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Ns) - 1
		if res.Rigid[last] > 0 {
			b.ReportMetric(res.NonRigid[last]/res.Rigid[last], "nonrigid-slowdown")
		}
	}
}
