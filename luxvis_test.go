package luxvis_test

import (
	"testing"
	"time"

	"luxvis"
)

// The façade test doubles as the package's runnable documentation: it
// exercises the whole public surface end to end.

func TestFacadeEndToEnd(t *testing.T) {
	pts := luxvis.Generate(luxvis.Uniform, 24, 1)
	if len(pts) != 24 {
		t.Fatalf("Generate returned %d points", len(pts))
	}
	res, err := luxvis.Run(luxvis.NewLogVis(), pts,
		luxvis.DefaultOptions(luxvis.NewAsyncRandom(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("LogVis did not reach Complete Visibility (epochs=%d)", res.Epochs)
	}
	if res.Collisions != 0 {
		t.Errorf("collisions: %d", res.Collisions)
	}
	if !luxvis.CompleteVisibility(res.Final) {
		t.Error("final configuration not completely visible")
	}
	if !luxvis.StrictlyConvexPosition(res.Final) {
		t.Error("final configuration not strictly convex")
	}
}

func TestFacadeBaseline(t *testing.T) {
	pts := luxvis.Generate(luxvis.CircleStart, 10, 2)
	opt := luxvis.DefaultOptions(luxvis.SchedulerByName("fsync"), 2)
	res, err := luxvis.Run(luxvis.NewSeqVis(), pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Error("baseline failed on an already-convex start")
	}
}

func TestFacadeSchedulers(t *testing.T) {
	names := luxvis.SchedulerNames()
	if len(names) != 5 {
		t.Fatalf("scheduler names = %v", names)
	}
	for _, n := range names {
		if s := luxvis.SchedulerByName(n); s.Name() != n {
			t.Errorf("SchedulerByName(%q).Name() = %q", n, s.Name())
		}
	}
}

func TestFacadeConcurrent(t *testing.T) {
	pts := luxvis.Generate(luxvis.Clustered, 10, 3)
	res, err := luxvis.RunConcurrent(luxvis.NewLogVis(), pts, luxvis.ConcurrentOptions{
		Seed:      3,
		MaxWall:   15 * time.Second,
		MeanDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("concurrent run did not stabilize")
	}
	if !luxvis.CompleteVisibility(res.Final) {
		t.Error("concurrent final configuration fails CV")
	}
}

func TestFacadeFamilies(t *testing.T) {
	if got := len(luxvis.Families()); got != 10 {
		t.Errorf("families = %d", got)
	}
	for _, f := range luxvis.Families() {
		pts := luxvis.Generate(f, 5, 1)
		if len(pts) != 5 {
			t.Errorf("%s: wrong size", f)
		}
	}
}

func TestFacadeGeometry(t *testing.T) {
	tri := []luxvis.Point{luxvis.Pt(0, 0), luxvis.Pt(4, 0), luxvis.Pt(2, 3)}
	if !luxvis.CompleteVisibility(tri) {
		t.Error("triangle fails CV")
	}
	line := []luxvis.Point{luxvis.Pt(0, 0), luxvis.Pt(2, 0), luxvis.Pt(4, 0)}
	if luxvis.CompleteVisibility(line) {
		t.Error("line passes CV")
	}
}
