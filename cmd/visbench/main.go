// Command visbench regenerates the reproduction's tables and figures
// (see EXPERIMENTS.md): every experiment can be run individually or as a
// full suite.
//
// Usage:
//
//	visbench                 # run the full suite (T1-T4, F1-F6)
//	visbench -exp T1         # one experiment
//	visbench -exp F1 -quick  # shrunken sweep (CI-sized)
//	visbench -seeds 10       # more repetitions per cell
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"luxvis/internal/exp"
	"luxvis/internal/version"
)

func main() {
	var (
		expName    = flag.String("exp", "all", "experiment to run (T1-T4, F1-F6, or 'all')")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		seeds      = flag.Int("seeds", 0, "repetitions per cell (0 = experiment default)")
		epochs     = flag.Int("max-epochs", 0, "per-run epoch cap (0 = default)")
		svgDir     = flag.String("svg", "", "also write SVG figures (T1, F1, F3) into this directory")
		visBench   = flag.String("bench-visibility", "", "measure the visibility kernel against the per-Look baseline, write the JSON report to this path ('-' = stdout), and exit")
		visWorkers = flag.Int("kernel-workers", 0, "worker count for the bench-visibility parallel kernel column (0 = numCPU)")
		strBench   = flag.String("bench-stream", "", "measure stream-hub fan-out overhead on the hot engine path, write the JSON report to this path ('-' = stdout), and exit")
		checkBase  = flag.Bool("check-baseline", false, "re-measure a CI-sized subset and compare against the checked-in benchmark baselines; exit 1 on regression, skip (exit 0) on a core-count mismatch")
		baseVis    = flag.String("baseline-visibility", "BENCH_visibility.json", "visibility baseline for -check-baseline")
		baseStream = flag.String("baseline-stream", "BENCH_stream.json", "stream baseline for -check-baseline")
		baseTol    = flag.Float64("baseline-tolerance", 0.35, "allowed relative regression for -check-baseline ratios")
		showVer    = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}
	if *checkBase {
		if *baseTol <= 0 || *baseTol >= 1 {
			fmt.Fprintf(os.Stderr, "visbench: -baseline-tolerance %v is not in (0, 1)\n", *baseTol)
			os.Exit(2)
		}
		os.Exit(runCheckBaseline(*baseVis, *baseStream, *baseTol, os.Stdout))
	}
	if *visBench != "" {
		out := os.Stdout
		if *visBench != "-" {
			f, err := os.Create(*visBench)
			if err != nil {
				fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := runVisibilityBench(out, *visWorkers); err != nil {
			fmt.Fprintf(os.Stderr, "visbench: bench-visibility: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *strBench != "" {
		out := os.Stdout
		if *strBench != "-" {
			f, err := os.Create(*strBench)
			if err != nil {
				fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := runStreamBench(out); err != nil {
			fmt.Fprintf(os.Stderr, "visbench: bench-stream: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := exp.Config{Quick: *quick, Seeds: *seeds, MaxEpochs: *epochs, Out: os.Stdout}

	names := exp.Names()
	if *expName != "all" {
		names = strings.Split(*expName, ",")
	}
	// Validate every requested name before running anything: a typo in a
	// comma-separated list should fail immediately with the known names,
	// not after minutes of sweeps on the experiments before it.
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if !knownExperiment(names[i]) {
			fmt.Fprintf(os.Stderr, "visbench: unknown experiment %q (known: %s)\n",
				names[i], strings.Join(exp.Names(), ", "))
			os.Exit(2)
		}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		if err := exp.Run(name, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "visbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *svgDir != "" {
		figCfg := cfg
		figCfg.Out = nil // tables were already printed above
		paths, err := exp.Figures(figCfg, *svgDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "visbench: figures: %v\n", err)
			os.Exit(1)
		}
		for _, p := range paths {
			fmt.Printf("figure: %s\n", p)
		}
	}
}

// knownExperiment reports whether name is one of the compiled-in
// experiment identifiers.
func knownExperiment(name string) bool {
	for _, k := range exp.Names() {
		if name == k {
			return true
		}
	}
	return false
}
