package main

// The -check-baseline gate (ROADMAP item 2d): re-measure a small,
// CI-sized subset of the visibility and stream benchmarks and compare
// against the checked-in BENCH_visibility.json / BENCH_stream.json.
// Wall-clock numbers do not transfer between hosts, so every
// comparison is a *ratio* measured on one machine (speedupFull,
// engine-vs-baseline overhead) and the gate refuses to judge at all
// when the current host's core count differs from the baseline's —
// it skips with exit 0 rather than fail on hardware, so the job is
// safe to run on heterogeneous CI runners. Within a matching host,
// a regression beyond the tolerance exits 1.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"luxvis/internal/geom"
	"testing"
)

// checkBaselineSizes is the visibility subset the gate re-measures:
// the small end of the sweep, where a run fits CI budgets.
var checkBaselineSizes = []int{64, 256}

// checkBaselineSubs is the stream fan-out subset.
var checkBaselineSubs = []int{1, 64}

// compareVisibility checks fresh visibility rows against the baseline
// report, returning one human-readable issue per regression. Two
// checks per size: the kernel's zero-allocation invariant (absolute —
// an allocation on the warm path is a bug on any host), and the
// full-pass speedup ratio, which may not fall below the baseline's by
// more than tol (0.35 = 35%).
func compareVisibility(base *VisBenchReport, fresh []VisBenchRow, tol float64) []string {
	byN := make(map[int]VisBenchRow)
	for _, row := range base.Sizes {
		byN[row.N] = row
	}
	var issues []string
	for _, row := range fresh {
		if row.KernelAllocsPass > 0 {
			issues = append(issues, fmt.Sprintf(
				"visibility n=%d: kernel pass allocates (%d allocs/pass); the warm kernel must be zero-allocation",
				row.N, row.KernelAllocsPass))
		}
		b, ok := byN[row.N]
		if !ok || b.SpeedupFull <= 0 {
			continue
		}
		floor := b.SpeedupFull * (1 - tol)
		if row.SpeedupFull < floor {
			issues = append(issues, fmt.Sprintf(
				"visibility n=%d: speedupFull %.2fx fell below %.2fx (baseline %.2fx - %.0f%% tolerance)",
				row.N, row.SpeedupFull, floor, b.SpeedupFull, tol*100))
		}
	}
	return issues
}

// compareStream checks fresh fan-out rows against the baseline report.
// The transferable quantity is the overhead ratio engineNs/baselineNs
// (hub attached vs bare run, same host, same moment); a fresh ratio
// more than tol above the baseline's is a regression.
func compareStream(base *StreamBenchReport, freshBaselineNs int64, fresh []StreamBenchRow, tol float64) []string {
	if base.BaselineNs <= 0 || freshBaselineNs <= 0 {
		return []string{"stream: baseline run measured no wall time; cannot compare"}
	}
	bySubs := make(map[int]StreamBenchRow)
	for _, row := range base.Fanout {
		bySubs[row.Subscribers] = row
	}
	var issues []string
	for _, row := range fresh {
		b, ok := bySubs[row.Subscribers]
		if !ok || b.EngineNs <= 0 {
			continue
		}
		baseRatio := float64(b.EngineNs) / float64(base.BaselineNs)
		freshRatio := float64(row.EngineNs) / float64(freshBaselineNs)
		ceiling := baseRatio * (1 + tol)
		if freshRatio > ceiling {
			issues = append(issues, fmt.Sprintf(
				"stream %d subscriber(s): engine/baseline ratio %.3f exceeds %.3f (baseline %.3f + %.0f%% tolerance)",
				row.Subscribers, freshRatio, ceiling, baseRatio, tol*100))
		}
	}
	return issues
}

// loadBaseline reads one checked-in report.
func loadBaseline(path string, into any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(into); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// measureVisibilitySubset re-runs the gate's visibility cells using the
// same harness as the full -bench-visibility report.
func measureVisibilitySubset() []VisBenchRow {
	var rows []VisBenchRow
	for _, n := range checkBaselineSizes {
		pts := visBenchPoints(n)
		kernRes := kernelPass(pts, 1)
		lookRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					_ = geom.VisibleSetFast(pts, r)
				}
			}
		})
		row := VisBenchRow{
			N:                n,
			KernelNsPerPass:  kernRes.NsPerOp(),
			PerLookNsPerPass: lookRes.NsPerOp(),
			KernelAllocsPass: int64(kernRes.AllocsPerOp()),
		}
		if row.KernelNsPerPass > 0 {
			row.SpeedupFull = float64(row.PerLookNsPerPass) / float64(row.KernelNsPerPass)
		}
		rows = append(rows, row)
	}
	return rows
}

// runCheckBaseline is the -check-baseline entry point. Exit codes:
// 0 within tolerance (or skipped on a host mismatch), 1 regression,
// 2 unreadable baseline.
func runCheckBaseline(visPath, streamPath string, tol float64, stdout io.Writer) int {
	var issues []string
	checked := 0

	var visBase VisBenchReport
	if err := loadBaseline(visPath, &visBase); err != nil {
		fmt.Fprintf(os.Stderr, "visbench: check-baseline: %v\n", err)
		return 2
	}
	if visBase.Host.NumCPU != runtime.NumCPU() {
		fmt.Fprintf(stdout, "visbench: check-baseline: skipping %s (recorded on %d CPU(s), this host has %d; ratios do not transfer)\n",
			visPath, visBase.Host.NumCPU, runtime.NumCPU())
	} else {
		issues = append(issues, compareVisibility(&visBase, measureVisibilitySubset(), tol)...)
		checked++
	}

	var strBase StreamBenchReport
	if err := loadBaseline(streamPath, &strBase); err != nil {
		fmt.Fprintf(os.Stderr, "visbench: check-baseline: %v\n", err)
		return 2
	}
	if strBase.Host.NumCPU != runtime.NumCPU() {
		fmt.Fprintf(stdout, "visbench: check-baseline: skipping %s (recorded on %d CPU(s), this host has %d; ratios do not transfer)\n",
			streamPath, strBase.Host.NumCPU, runtime.NumCPU())
	} else {
		baseDur, err := streamBenchRun(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "visbench: check-baseline: %v\n", err)
			return 2
		}
		var rows []StreamBenchRow
		for _, subs := range checkBaselineSubs {
			row, err := streamBenchCell(subs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "visbench: check-baseline: %v\n", err)
				return 2
			}
			rows = append(rows, row)
		}
		issues = append(issues, compareStream(&strBase, baseDur.Nanoseconds(), rows, tol)...)
		checked++
	}

	if len(issues) > 0 {
		for _, msg := range issues {
			fmt.Fprintf(stdout, "visbench: check-baseline: REGRESSION: %s\n", msg)
		}
		return 1
	}
	fmt.Fprintf(stdout, "visbench: check-baseline: %d of 2 baseline(s) checked within %.0f%% tolerance\n", checked, tol*100)
	return 0
}
