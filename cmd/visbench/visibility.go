package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"luxvis/internal/geom"
)

// visBenchSizes is the N sweep of the visibility-kernel baseline,
// mirroring kernelBenchSizes in internal/geom/bench_test.go.
var visBenchSizes = []int{64, 256, 1024, 4096}

// VisBenchHost identifies the machine a baseline was measured on; a
// single-core host cannot show the kernel's parallel fan-out, so the
// core count is part of the record.
type VisBenchHost struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCPU"`
	// KernelWorkers is the worker count NewKernel(0) resolved to.
	KernelWorkers int `json:"kernelWorkers"`
	// ParallelWorkers is the worker count the kernelParallel column ran
	// with (the -kernel-workers override, or numCPU). On a single-core
	// host it exercises the fan-out dispatch path without parallelism.
	ParallelWorkers int `json:"parallelWorkers"`
}

// VisBenchRow is one swarm size's measurements. "Pass" means resolving
// all N visibility rows once: the kernel does it as one batched
// zero-allocation computation, the per-Look baseline as N independent
// allocating VisibleSetFast calls (what the engine paid per cycle of
// Looks before the kernel), and the incremental pass re-reads all N
// rows after a single-robot move, revalidating unaffected rows instead
// of recomputing them.
type VisBenchRow struct {
	N                  int     `json:"n"`
	KernelNsPerPass    int64   `json:"kernelNsPerPass"`
	KernelParNsPass    int64   `json:"kernelParallelNsPerPass"`
	PerLookNsPerPass   int64   `json:"perLookNsPerPass"`
	IncrementalNsPass  int64   `json:"incrementalNsPerPass"`
	KernelAllocsPass   int64   `json:"kernelAllocsPerPass"`
	PerLookAllocsPass  int64   `json:"perLookAllocsPerPass"`
	SpeedupFull        float64 `json:"speedupFull"`
	SpeedupIncremental float64 `json:"speedupIncremental"`
	// SpeedupParallel = serial kernel / parallel kernel: >1 only when
	// the host has cores to fan out over; ~1 or slightly below on one
	// core, where it prices the dispatch overhead instead.
	SpeedupParallel float64 `json:"speedupParallel"`
}

// VisBenchReport is the BENCH_visibility.json schema.
type VisBenchReport struct {
	Host  VisBenchHost  `json:"host"`
	Sizes []VisBenchRow `json:"sizes"`
	Notes []string      `json:"notes"`
}

func visBenchPoints(n int) []geom.Point {
	rng := rand.New(rand.NewSource(2)) // matches internal/geom bench seed
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

// kernelPass benchmarks one batched Reset+ComputeAll pass at the given
// worker count.
func kernelPass(pts []geom.Point, workers int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		kern := geom.NewKernel(workers)
		defer kern.Close()
		snap := kern.NewSnapshot()
		snap.Reset(pts)
		snap.ComputeAll()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap.Reset(pts)
			snap.ComputeAll()
		}
	})
}

// runVisibilityBench measures the kernel (serial and fanned out over
// parWorkers workers; 0 = numCPU) against the per-Look baseline and
// writes the JSON baseline to w.
func runVisibilityBench(w io.Writer, parWorkers int) error {
	kern := geom.NewKernel(0)
	workers := kern.Workers()
	kern.Close()
	if parWorkers <= 0 {
		parWorkers = runtime.NumCPU()
	}

	rep := VisBenchReport{
		Host: VisBenchHost{
			GoVersion:       runtime.Version(),
			GOOS:            runtime.GOOS,
			GOARCH:          runtime.GOARCH,
			NumCPU:          runtime.NumCPU(),
			KernelWorkers:   workers,
			ParallelWorkers: parWorkers,
		},
		Notes: []string{
			"A pass resolves all N visibility rows once; ns figures are per pass.",
			"kernel: one batched Snapshot Reset+ComputeAll (arena-backed, zero allocations when warm), pinned to one worker.",
			"kernelParallel: the same pass fanned out over parallelWorkers workers (-kernel-workers to override).",
			"perLook: N independent VisibleSetFast calls, each allocating its own scratch — the pre-kernel engine cost per cycle of Looks.",
			"incremental: one Snapshot.Update (single-robot move) followed by re-reading all N rows; rows the move provably cannot affect revalidate instead of recomputing.",
			"speedupFull = perLook/kernel, speedupIncremental = perLook/incremental, speedupParallel = kernel/kernelParallel, on this host.",
			"On a single-core host (numCPU=1) speedupParallel prices the fan-out dispatch overhead, not parallelism; re-run `make bench-visibility` on a multi-core host to record the scaling.",
		},
	}

	for _, n := range visBenchSizes {
		pts := visBenchPoints(n)

		kernRes := kernelPass(pts, 1)
		kernParRes := kernelPass(pts, parWorkers)

		lookRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					_ = geom.VisibleSetFast(pts, r)
				}
			}
		})

		incRes := testing.Benchmark(func(b *testing.B) {
			kern := geom.NewKernel(0)
			defer kern.Close()
			snap := kern.NewSnapshot()
			snap.Reset(pts)
			snap.ComputeAll()
			home := pts[n/2]
			away := geom.Pt(home.X+431.7, home.Y-219.3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					snap.Update(n/2, away)
				} else {
					snap.Update(n/2, home)
				}
				for r := 0; r < n; r++ {
					_ = snap.Row(r)
				}
			}
		})

		row := VisBenchRow{
			N:                 n,
			KernelNsPerPass:   kernRes.NsPerOp(),
			KernelParNsPass:   kernParRes.NsPerOp(),
			PerLookNsPerPass:  lookRes.NsPerOp(),
			IncrementalNsPass: incRes.NsPerOp(),
			KernelAllocsPass:  int64(kernRes.AllocsPerOp()),
			PerLookAllocsPass: int64(lookRes.AllocsPerOp()),
		}
		if row.KernelNsPerPass > 0 {
			row.SpeedupFull = float64(row.PerLookNsPerPass) / float64(row.KernelNsPerPass)
		}
		if row.IncrementalNsPass > 0 {
			row.SpeedupIncremental = float64(row.PerLookNsPerPass) / float64(row.IncrementalNsPass)
		}
		if row.KernelParNsPass > 0 {
			row.SpeedupParallel = float64(row.KernelNsPerPass) / float64(row.KernelParNsPass)
		}
		rep.Sizes = append(rep.Sizes, row)
		fmt.Fprintf(os.Stderr, "visbench: n=%d kernel=%dns parallel(%d)=%dns perLook=%dns incremental=%dns (full %.2fx, incremental %.2fx, parallel %.2fx)\n",
			n, row.KernelNsPerPass, parWorkers, row.KernelParNsPass, row.PerLookNsPerPass, row.IncrementalNsPass,
			row.SpeedupFull, row.SpeedupIncremental, row.SpeedupParallel)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
