package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/stream"
)

// streamBenchSubs is the fan-out sweep: engine overhead with one hot
// run broadcast to this many draining subscribers.
var streamBenchSubs = []int{1, 64, 1024, 4096}

// streamBenchIters: each cell runs the engine this many times and keeps
// the fastest, damping scheduler noise without a long benchmark loop.
const streamBenchIters = 3

// StreamBenchHost identifies the measuring machine.
type StreamBenchHost struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCPU"`
}

// StreamBenchRow is one subscriber count's measurements against the
// shared no-observer baseline.
type StreamBenchRow struct {
	Subscribers int `json:"subscribers"`
	// EngineNs is the engine run's wall time with the hub attached and
	// all subscribers draining concurrently (fastest of the iterations).
	EngineNs int64 `json:"engineNs"`
	// OverheadPct = (engineNs - baselineNs) / baselineNs * 100: what
	// attaching the hub and fan-out costs the hot run.
	OverheadPct float64 `json:"overheadPct"`
	// DrainNs is the wall time until every subscriber finished draining
	// (>= engineNs; subscribers keep reading after the run ends).
	DrainNs int64 `json:"drainNs"`
	// Frames published and encode time per frame, from the hub counters.
	Frames           int64 `json:"frames"`
	EncodeNsPerFrame int64 `json:"encodeNsPerFrame"`
	// Dropped counts frames lost across all subscribers: under the
	// drop-oldest policy a frame is lost only once it has left both the
	// subscriber's ring and the hub's history refill window.
	Dropped int64 `json:"dropped"`
}

// StreamBenchReport is the BENCH_stream.json schema.
type StreamBenchReport struct {
	Host StreamBenchHost `json:"host"`
	// The measured run: one deterministic engine scenario.
	Algorithm  string           `json:"algorithm"`
	Scheduler  string           `json:"scheduler"`
	N          int              `json:"n"`
	Seed       int64            `json:"seed"`
	BaselineNs int64            `json:"baselineNs"`
	Fanout     []StreamBenchRow `json:"fanout"`
	Notes      []string         `json:"notes"`
}

const (
	streamBenchN    = 64
	streamBenchSeed = int64(7)
)

// streamBenchRun executes the canonical scenario once with the given
// observer, returning the run's wall time.
func streamBenchRun(observer sim.Observer) (time.Duration, error) {
	pts := config.Generate(config.Uniform, streamBenchN, streamBenchSeed)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), streamBenchSeed)
	opt.Observer = observer
	start := time.Now()
	_, err := sim.Run(core.NewLogVis(), pts, opt)
	return time.Since(start), err
}

// streamBenchCell measures one subscriber count: attach a hub, fan out
// to subs draining subscribers, run the engine, wait for the drains.
func streamBenchCell(subs int) (StreamBenchRow, error) {
	row := StreamBenchRow{Subscribers: subs}
	var bestEngine, bestDrain time.Duration
	for iter := 0; iter < streamBenchIters; iter++ {
		var ctr stream.Counters
		hub := stream.NewHub(stream.HubOptions{Counters: &ctr})
		var wg sync.WaitGroup
		ctx := context.Background()
		subscribers := make([]*stream.Subscriber, subs)
		for i := 0; i < subs; i++ {
			s := hub.Subscribe(0)
			subscribers[i] = s
			wg.Add(1)
			go func(s *stream.Subscriber) {
				defer wg.Done()
				for {
					if _, err := s.Next(ctx); err != nil {
						return
					}
				}
			}(s)
		}
		start := time.Now()
		engineDur, err := streamBenchRun(hub)
		if err != nil {
			return row, err
		}
		wg.Wait()
		drainDur := time.Since(start)
		snap := ctr.Snapshot()
		var dropped int64
		for _, s := range subscribers {
			dropped += int64(s.Dropped())
			s.Close()
		}
		hub.Release()
		if iter == 0 || engineDur < bestEngine {
			bestEngine = engineDur
			bestDrain = drainDur
			row.Frames = snap.FramesTotal
			row.Dropped = dropped
			if snap.FramesTotal > 0 {
				row.EncodeNsPerFrame = snap.EncodeNanos / snap.FramesTotal
			}
		}
	}
	row.EngineNs = bestEngine.Nanoseconds()
	row.DrainNs = bestDrain.Nanoseconds()
	return row, nil
}

// runStreamBench measures streaming fan-out overhead on the hot engine
// path and writes the JSON report to w.
func runStreamBench(w io.Writer) error {
	rep := StreamBenchReport{
		Host: StreamBenchHost{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Algorithm: "logvis",
		Scheduler: "async-random",
		N:         streamBenchN,
		Seed:      streamBenchSeed,
		Notes: []string{
			"baselineNs: the same run with no observer attached — the engine's raw wall time.",
			"engineNs: the run's wall time with a stream hub observing and all subscribers draining concurrently; fastest of " + fmt.Sprint(streamBenchIters) + " iterations.",
			"overheadPct = (engineNs - baselineNs) / baselineNs * 100: publish is one encode plus per-subscriber ring writes, never a block.",
			"dropped: frames lost across all subscribers — a frame counts only once it leaves both the subscriber's ring (default 256 frames) and the hub history (default 16384 frames, the refill window); nonzero means consumers trailed the publisher by more than the history window, not that the engine slowed down.",
			"encodeNsPerFrame: the encode-once cost shared by every subscriber.",
			"Subscriber goroutines compete for the same CPUs as the engine, so on small hosts high fan-out counts measure scheduling pressure as well as hub overhead.",
		},
	}

	// Baseline: fastest no-observer run.
	var baseline time.Duration
	for iter := 0; iter < streamBenchIters; iter++ {
		d, err := streamBenchRun(nil)
		if err != nil {
			return err
		}
		if iter == 0 || d < baseline {
			baseline = d
		}
	}
	rep.BaselineNs = baseline.Nanoseconds()

	for _, subs := range streamBenchSubs {
		row, err := streamBenchCell(subs)
		if err != nil {
			return err
		}
		if rep.BaselineNs > 0 {
			row.OverheadPct = float64(row.EngineNs-rep.BaselineNs) / float64(rep.BaselineNs) * 100
		}
		rep.Fanout = append(rep.Fanout, row)
		fmt.Fprintf(os.Stderr, "bench-stream: %4d subscribers: engine %8.2fms (baseline %8.2fms, %+6.1f%%), frames %d, dropped %d\n",
			subs, float64(row.EngineNs)/1e6, float64(rep.BaselineNs)/1e6, row.OverheadPct, row.Frames, row.Dropped)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
