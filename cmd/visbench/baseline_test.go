package main

import (
	"strings"
	"testing"
)

func visBaseline() *VisBenchReport {
	return &VisBenchReport{
		Sizes: []VisBenchRow{
			{N: 64, SpeedupFull: 10.0},
			{N: 256, SpeedupFull: 20.0},
		},
	}
}

func TestCompareVisibility(t *testing.T) {
	cases := []struct {
		name  string
		fresh []VisBenchRow
		want  []string // substrings; empty = no issues
	}{
		{
			name:  "within tolerance",
			fresh: []VisBenchRow{{N: 64, SpeedupFull: 9.0}, {N: 256, SpeedupFull: 14.0}},
		},
		{
			name:  "faster than baseline is fine",
			fresh: []VisBenchRow{{N: 64, SpeedupFull: 30.0}},
		},
		{
			name:  "speedup collapse",
			fresh: []VisBenchRow{{N: 64, SpeedupFull: 5.0}},
			want:  []string{"n=64", "speedupFull 5.00x"},
		},
		{
			name:  "allocation on the warm path",
			fresh: []VisBenchRow{{N: 64, SpeedupFull: 10.0, KernelAllocsPass: 3}},
			want:  []string{"3 allocs/pass", "zero-allocation"},
		},
		{
			name: "size absent from baseline is ignored",
			// Half the baseline's worst speedup, but no n=1024 row to
			// compare against — not a verdict the gate can make.
			fresh: []VisBenchRow{{N: 1024, SpeedupFull: 1.0}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			issues := compareVisibility(visBaseline(), tc.fresh, 0.35)
			assertIssues(t, issues, tc.want)
		})
	}
}

func streamBaseline() *StreamBenchReport {
	return &StreamBenchReport{
		BaselineNs: 1_000_000,
		Fanout: []StreamBenchRow{
			{Subscribers: 1, EngineNs: 1_100_000},  // ratio 1.10
			{Subscribers: 64, EngineNs: 1_500_000}, // ratio 1.50
		},
	}
}

func TestCompareStream(t *testing.T) {
	cases := []struct {
		name    string
		freshNs int64
		fresh   []StreamBenchRow
		want    []string
	}{
		{
			name:    "within tolerance",
			freshNs: 2_000_000,
			fresh: []StreamBenchRow{
				{Subscribers: 1, EngineNs: 2_400_000},  // ratio 1.20 vs ceiling 1.485
				{Subscribers: 64, EngineNs: 3_800_000}, // ratio 1.90 vs ceiling 2.025
			},
		},
		{
			name:    "overhead blowup",
			freshNs: 2_000_000,
			fresh:   []StreamBenchRow{{Subscribers: 64, EngineNs: 9_000_000}}, // ratio 4.5
			want:    []string{"64 subscriber(s)", "4.500"},
		},
		{
			name:    "unmeasurable baseline",
			freshNs: 0,
			fresh:   []StreamBenchRow{{Subscribers: 1, EngineNs: 1}},
			want:    []string{"cannot compare"},
		},
		{
			name:    "fan-out absent from baseline is ignored",
			freshNs: 1_000_000,
			fresh:   []StreamBenchRow{{Subscribers: 4096, EngineNs: 99_000_000}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			issues := compareStream(streamBaseline(), tc.freshNs, tc.fresh, 0.35)
			assertIssues(t, issues, tc.want)
		})
	}
}

func assertIssues(t *testing.T, issues, want []string) {
	t.Helper()
	if len(want) == 0 {
		if len(issues) != 0 {
			t.Fatalf("unexpected issues: %v", issues)
		}
		return
	}
	if len(issues) == 0 {
		t.Fatalf("no issues; want one mentioning %v", want)
	}
	joined := strings.Join(issues, "\n")
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Errorf("issues %q missing %q", joined, w)
		}
	}
}
