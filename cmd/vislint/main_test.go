package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"luxvis/internal/lint"
)

// TestAnalyzerSelection: a bad -analyzers= value must fail loudly
// (exit 2, known names listed) before any analysis runs — silently
// running a partial or empty set is a false green gate. All cases here
// error during flag/selection handling, so no module load happens and
// the table stays fast.
func TestAnalyzerSelection(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantOut []string // substrings that must appear on stderr
	}{
		{
			name:    "unknown name",
			args:    []string{"-analyzers=nosuch"},
			wantOut: []string{`unknown analyzer "nosuch"`, "goleak", "lockorder", "chanown", "floateq"},
		},
		{
			name:    "unknown name via -run alias",
			args:    []string{"-run=nosuch"},
			wantOut: []string{`unknown analyzer "nosuch"`, "known:"},
		},
		{
			name:    "typo among valid names",
			args:    []string{"-analyzers=goleak,lockordr"},
			wantOut: []string{`unknown analyzer "lockordr"`, "lockorder"},
		},
		{
			name:    "empty element from trailing comma",
			args:    []string{"-analyzers=goleak,"},
			wantOut: []string{`unknown analyzer ""`},
		},
		{
			name:    "superseded name points at successor",
			args:    []string{"-analyzers=nondet"},
			wantOut: []string{"superseded", "detsource"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("run(%v) = %d; want 2\nstderr: %s", tc.args, code, stderr.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr = %q; missing %q", stderr.String(), want)
				}
			}
		})
	}

	// The error message's "known:" list tracks lint.All exactly, so a
	// future analyzer cannot be silently missing from the help text.
	var stdout, stderr strings.Builder
	run([]string{"-analyzers=nosuch"}, &stdout, &stderr)
	for _, name := range lint.Names() {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("unknown-analyzer message %q does not list %q", stderr.String(), name)
		}
	}
}

// TestClearCache: -clear-cache must succeed in every cache state —
// including on a machine that has never run vislint (no cache
// directory at all) — and must never create the directory as a side
// effect of clearing it.
func TestClearCache(t *testing.T) {
	cases := []struct {
		name  string
		setup func(t *testing.T, dir string) // dir = would-be cache dir
	}{
		{"missing", func(t *testing.T, dir string) {}},
		{"empty", func(t *testing.T, dir string) {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}},
		{"populated", func(t *testing.T, dir string) {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"aaaa.json", "bbbb.json"} {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(`{"findings":null}`), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := t.TempDir()
			t.Setenv("XDG_CACHE_HOME", base) // redirects os.UserCacheDir on linux
			cacheDir := filepath.Join(base, "luxvis-vislint")
			tc.setup(t, cacheDir)

			var stdout, stderr strings.Builder
			if code := run([]string{"-clear-cache"}, &stdout, &stderr); code != 0 {
				t.Fatalf("run(-clear-cache) = %d; want 0\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "cleared cache") {
				t.Errorf("stdout = %q; want a cleared-cache confirmation", stdout.String())
			}
			entries, err := os.ReadDir(cacheDir)
			switch {
			case os.IsNotExist(err):
				if tc.name != "missing" {
					// Removing the directory itself would also be fine; what
					// matters is that no entries survive.
					return
				}
				// The missing case must stay missing: clearing must not
				// create the directory.
			case err != nil:
				t.Fatal(err)
			case len(entries) != 0:
				t.Errorf("cache dir still has %d entries after clear", len(entries))
			}
			if tc.name == "missing" {
				if _, err := os.Stat(cacheDir); !os.IsNotExist(err) {
					t.Errorf("clear-cache created %s; it must not touch a missing cache", cacheDir)
				}
			}
		})
	}
}
