// Command vislint is luxvis's domain-aware static analysis gate. It
// type-checks the whole module with nothing but the standard library
// and runs the internal/lint analyzer suite — floateq, palette,
// mutexdiscipline, nondet, ctxcancel — each of which protects one of
// the paper's invariants at build time (see DESIGN.md, "Static
// invariants"). It prints findings as file:line:col with severity and
// explanation, and exits 1 when any error-severity finding survives
// the //lint:allow directives.
//
// Usage:
//
//	go run ./cmd/vislint ./...
//	go run ./cmd/vislint -list
//	go run ./cmd/vislint -run floateq,nondet ./internal/sim
//
// Package arguments narrow reporting to the matching directories; the
// whole module is always loaded (analysis needs full type
// information), so ./... and no arguments are equivalent.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"luxvis/internal/lint"
	"luxvis/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vislint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	quiet := fs.Bool("q", false, "print only the summary line")
	showVer := fs.Bool("version", false, "print build version and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vislint [flags] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *showVer {
		fmt.Fprintln(stdout, version.String())
		return 0
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	var names []string
	if *runNames != "" {
		names = strings.Split(*runNames, ",")
	}
	analyzers, err := lint.ByName(names...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "vislint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "vislint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "vislint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, root, cwd, fs.Args())
	if len(pkgs) == 0 {
		// A pattern that matches nothing is a typo'd path, and silently
		// reporting "0 findings" on it would be a false green gate.
		fmt.Fprintf(stderr, "vislint: no packages match %v\n", fs.Args())
		return 2
	}

	findings := lint.Run(pkgs, analyzers)
	errs := 0
	for _, f := range findings {
		if f.Severity == lint.Error {
			errs++
		}
		if !*quiet {
			f.Pos.Filename = relPath(root, f.Pos.Filename)
			fmt.Fprintln(stdout, f)
		}
	}
	fmt.Fprintf(stdout, "vislint: %d package(s), %d finding(s), %d error(s)\n",
		len(pkgs), len(findings), errs)
	if errs > 0 {
		return 1
	}
	return 0
}

// filterPackages narrows the loaded set to the requested patterns.
// "./..." (or no patterns) keeps everything; "./internal/sim" or
// "internal/sim" keeps that directory and, with a trailing "...", its
// subtree. Patterns resolve relative to cwd.
func filterPackages(pkgs []*lint.Package, root, cwd string, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var keep []*lint.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(p.Dir, root, cwd, pat) {
				keep = append(keep, p)
				break
			}
		}
	}
	return keep
}

// matchPattern reports whether a package directory matches one CLI
// pattern.
func matchPattern(dir, root, cwd, pat string) bool {
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
	} else if pat == "..." {
		recursive, pat = true, "."
	}
	base := cwd
	if filepath.IsAbs(pat) {
		base = ""
	}
	target := filepath.Clean(filepath.Join(base, pat))
	if dir == target {
		return true
	}
	if recursive {
		rel, err := filepath.Rel(target, dir)
		return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
	}
	return false
}

// relPath renders an absolute finding path relative to the module root
// for stable, clickable output.
func relPath(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
