// Command vislint is luxvis's domain-aware static analysis gate. It
// type-checks the whole module into one shared universe with nothing
// but the standard library, computes per-function cross-package
// summaries, and runs the internal/lint analyzer suite — floateq,
// palette, mutexdiscipline, ctxcancel, locksafe, atomicmix, errsink,
// wireformat, arenaalias, ctxflow, detsource, goleak, lockorder,
// chanown — each of which protects one of the paper's invariants at
// build time (see DESIGN.md, "Static invariants"). It prints findings
// as file:line:col with severity and explanation, and exits 1 when any
// error-severity finding survives the //lint:allow directives.
//
// Usage:
//
//	go run ./cmd/vislint ./...
//	go run ./cmd/vislint -list
//	go run ./cmd/vislint -analyzers goleak,lockorder ./internal/stream
//	go run ./cmd/vislint -diff origin/main ./...  # PR-scoped reporting
//	go run ./cmd/vislint -format=sarif ./... > vislint.sarif
//	go run ./cmd/vislint -format=github ./...   # CI annotations
//
// Package arguments narrow reporting to the matching directories; the
// whole module is always hashed and resolved (analysis needs full type
// information), so ./... and no arguments are equivalent.
//
// Runs are incremental: per-package results are cached under
// os.UserCacheDir()/luxvis-vislint, keyed by content hash of the
// package and its module-local dependencies, so an unchanged package is
// never re-type-checked or re-analyzed. -no-cache bypasses the cache
// for one run; -clear-cache deletes it and exits.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"luxvis/internal/lint"
	"luxvis/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vislint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	analyzerNames := fs.String("analyzers", "", "comma-separated analyzer subset (default: all; see -list)")
	runNames := fs.String("run", "", "alias for -analyzers (kept for existing invocations)")
	diffRef := fs.String("diff", "", "report only findings on lines changed since this git ref (analysis still covers the whole module)")
	quiet := fs.Bool("q", false, "print only the summary line")
	format := fs.String("format", "text", "output format: text, github (Actions annotations) or sarif (SARIF 2.1.0)")
	noCache := fs.Bool("no-cache", false, "bypass the result cache for this run")
	clearCache := fs.Bool("clear-cache", false, "delete the result cache and exit")
	workers := fs.Int("workers", 0, "max concurrent package analyses (0 = GOMAXPROCS)")
	showVer := fs.Bool("version", false, "print build version and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vislint [flags] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *showVer {
		fmt.Fprintln(stdout, version.String())
		return 0
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	if *clearCache {
		// Resolve the location without opening (= creating) the cache: a
		// machine that never ran vislint has nothing to clear, and the
		// command must succeed without leaving an empty directory behind.
		dir, err := lint.DefaultCacheDir()
		if err != nil {
			fmt.Fprintln(stderr, "vislint:", err)
			return 2
		}
		if err := lint.ClearCache(dir); err != nil {
			fmt.Fprintln(stderr, "vislint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "vislint: cleared cache at %s\n", dir)
		return 0
	}

	switch *format {
	case "text", "github", "sarif":
	default:
		fmt.Fprintf(stderr, "vislint: unknown -format %q (want text, github or sarif)\n", *format)
		return 2
	}

	sel := *analyzerNames
	if sel == "" {
		sel = *runNames
	}
	var names []string
	if sel != "" {
		names = strings.Split(sel, ",")
	}
	analyzers, err := lint.ByName(names...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "vislint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "vislint:", err)
		return 2
	}

	cfg := lint.Config{Workers: *workers}
	if !*noCache {
		// A cache that cannot be opened (read-only HOME, no cache dir)
		// must not fail the gate; the run just isn't incremental.
		if cache, err := lint.OpenCache(); err == nil {
			cfg.Cache = cache
		}
	}

	result, err := lint.LintModule(root, analyzers, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "vislint:", err)
		return 2
	}

	selected := filterPackages(result.Packages, root, cwd, fs.Args())
	if len(selected) == 0 {
		// A pattern that matches nothing is a typo'd path, and silently
		// reporting "0 findings" on it would be a false green gate.
		fmt.Fprintf(stderr, "vislint: no packages match %v\n", fs.Args())
		return 2
	}

	var findings []lint.Finding
	for _, p := range selected {
		findings = append(findings, p.Findings...)
	}

	if *diffRef != "" {
		// Reporting narrows to the lines changed since the ref; the
		// analysis above still covered the whole module, so cross-file
		// consequences of the change are reported where they land.
		changed, err := lint.ChangedLines(root, *diffRef)
		if err != nil {
			fmt.Fprintln(stderr, "vislint:", err)
			return 2
		}
		findings = lint.FilterChanged(findings, root, changed)
	}

	errs := 0
	for _, f := range findings {
		if f.Severity == lint.Error {
			errs++
		}
	}

	switch *format {
	case "sarif":
		// The document goes to stdout; the human summary to stderr so
		// redirection captures clean SARIF.
		if err := lint.WriteSARIF(stdout, root, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "vislint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "vislint: %s\n", summary(result, len(selected), len(findings), errs))
	case "github":
		if err := lint.WriteGitHub(stdout, root, findings); err != nil {
			fmt.Fprintln(stderr, "vislint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "vislint: %s\n", summary(result, len(selected), len(findings), errs))
	default:
		if !*quiet {
			for _, f := range findings {
				f.Pos.Filename = relPath(root, f.Pos.Filename)
				fmt.Fprintln(stdout, f)
			}
		}
		fmt.Fprintf(stdout, "vislint: %s\n", summary(result, len(selected), len(findings), errs))
	}
	if errs > 0 {
		return 1
	}
	return 0
}

// summary renders the one-line run report, including cache statistics
// when a cache was in play.
func summary(result *lint.ModuleResult, pkgs, findings, errs int) string {
	s := fmt.Sprintf("%d package(s), %d finding(s), %d error(s)", pkgs, findings, errs)
	if result.CacheHits > 0 {
		s += fmt.Sprintf(" [cache: %d hit(s), %d miss(es)]", result.CacheHits, result.CacheMisses)
	}
	return s
}

// filterPackages narrows the results to the requested patterns.
// "./..." (or no patterns) keeps everything; "./internal/sim" or
// "internal/sim" keeps that directory and, with a trailing "...", its
// subtree. Patterns resolve relative to cwd.
func filterPackages(pkgs []lint.PackageFindings, root, cwd string, patterns []string) []lint.PackageFindings {
	if len(patterns) == 0 {
		return pkgs
	}
	var keep []lint.PackageFindings
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(p.Dir, root, cwd, pat) {
				keep = append(keep, p)
				break
			}
		}
	}
	return keep
}

// matchPattern reports whether a package directory matches one CLI
// pattern.
func matchPattern(dir, root, cwd, pat string) bool {
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
	} else if pat == "..." {
		recursive, pat = true, "."
	}
	base := cwd
	if filepath.IsAbs(pat) {
		base = ""
	}
	target := filepath.Clean(filepath.Join(base, pat))
	if dir == target {
		return true
	}
	if recursive {
		rel, err := filepath.Rel(target, dir)
		return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
	}
	return false
}

// relPath renders an absolute finding path relative to the module root
// for stable, clickable output.
func relPath(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
