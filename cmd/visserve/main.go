// Command visserve exposes the simulator as an HTTP JSON service: runs
// and experiments execute on a bounded worker pool, repeated identical
// run requests are served from an LRU cache, and overload is shed with
// 429 instead of queueing without bound.
//
// Usage:
//
//	visserve                       # listen on :8080, NumCPU workers
//	visserve -addr :9090 -workers 4 -queue 128
//	visserve -timeout 30s -max-n 4096
//
// Try it:
//
//	curl 'localhost:8080/v1/run?algorithm=logvis&n=64&seed=7'
//	curl localhost:8080/metrics                      # JSON snapshot
//	curl -H 'Accept: text/plain' localhost:8080/metrics   # Prometheus text
//
// With -debug-addr a second, operator-only listener serves
// net/http/pprof profiles and /debug/runs (in-flight jobs with their
// current epoch); bind it to loopback only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"luxvis/internal/serve"
	"luxvis/internal/version"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation workers (0 = NumCPU)")
		queue      = flag.Int("queue", 0, "job queue depth before shedding 429s (0 = default)")
		cache      = flag.Int("cache", 0, "LRU result-cache entries (0 = default)")
		timeout    = flag.Duration("timeout", 0, "default per-job deadline (0 = 2m)")
		maxN       = flag.Int("max-n", 0, "largest accepted swarm size (0 = default)")
		debugAddr  = flag.String("debug-addr", "", "optional operator listener for pprof and /debug/runs (e.g. 127.0.0.1:6060)")
		traceDir   = flag.String("trace-dir", "", "serve stored trace files under this directory at /v1/replay/{name}")
		streamHist = flag.Int("stream-history", 0,
			"per-run stream resume-ring frames (0 = default)")
		streamRetain = flag.Int("stream-retain", 0,
			"finished streamable runs kept for replay (0 = default)")
		showVer = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}

	srv := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		DefaultTimeout: *timeout,
		MaxN:           *maxN,
		StreamHistory:  *streamHist,
		StreamRetain:   *streamRetain,
		TraceDir:       *traceDir,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var ds *http.Server
	if *debugAddr != "" {
		// Separate listener so profiles and run internals never share a
		// port with the public API.
		ds = &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "visserve: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("visserve: debug listener on %s (pprof, /debug/runs)\n", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("visserve: %s listening on %s\n", version.String(), *addr)

	select {
	case <-ctx.Done():
		fmt.Println("visserve: shutting down (draining in-flight jobs)")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "visserve: %v\n", err)
		os.Exit(1)
	}

	// Stop taking connections first, then drain the worker pool so
	// every accepted job finishes (or hits its own deadline).
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if ds != nil {
		_ = ds.Shutdown(shutdownCtx)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "visserve: shutdown: %v\n", err)
	}
	if err := srv.Close(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "visserve: drain: %v\n", err)
		os.Exit(1)
	}
}
