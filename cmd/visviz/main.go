// Command visviz renders Complete Visibility runs as SVG figures: the
// initial configuration, the final configuration, and the motion
// trajectories in between.
//
// Usage:
//
//	visviz -n 48 -out run.svg                 # trajectories of one run
//	visviz -n 48 -mode start -out start.svg   # just the initial swarm
//	visviz -n 48 -mode final -out final.svg   # just the terminal swarm
package main

import (
	"flag"
	"fmt"
	"os"

	"luxvis/internal/baseline"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/svgx"
	"luxvis/internal/version"
)

func main() {
	var (
		n         = flag.Int("n", 32, "number of robots")
		algoName  = flag.String("algo", "logvis", "algorithm: logvis | seqvis")
		schedName = flag.String("sched", "async-random", "scheduler")
		famName   = flag.String("family", "uniform", "initial configuration family")
		seed      = flag.Int64("seed", 1, "random seed")
		mode      = flag.String("mode", "paths", "what to render: start | final | paths")
		outPath   = flag.String("out", "out.svg", "output SVG path")
		width     = flag.Float64("w", 720, "viewport width")
		height    = flag.Float64("h", 720, "viewport height")
		showVer   = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}

	var algo model.Algorithm
	switch *algoName {
	case "logvis":
		algo = core.NewLogVis()
	case "seqvis":
		algo = baseline.NewSeqVis()
	default:
		fmt.Fprintf(os.Stderr, "visviz: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}
	pts := config.Generate(config.Family(*famName), *n, *seed)

	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "visviz: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	if *mode == "start" {
		if err := svgx.RenderConfiguration(f, pts, nil, *width, *height); err != nil {
			fmt.Fprintf(os.Stderr, "visviz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
		return
	}

	opt := sim.DefaultOptions(sched.ByName(*schedName), *seed)
	opt.RecordTrace = *mode == "paths"
	res, err := sim.Run(algo, pts, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "visviz: %v\n", err)
		os.Exit(1)
	}

	switch *mode {
	case "final":
		err = svgx.RenderConfiguration(f, res.Final, res.FinalColors, *width, *height)
	case "paths":
		paths := make([][]geom.Point, *n)
		for i, p := range pts {
			paths[i] = []geom.Point{p}
		}
		for _, e := range res.Trace {
			if e.Kind == "step" {
				paths[e.Robot] = append(paths[e.Robot], e.Pos)
			}
		}
		err = svgx.RenderTrajectories(f, paths, res.FinalColors, *width, *height)
	default:
		fmt.Fprintf(os.Stderr, "visviz: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "visviz: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (reached=%v epochs=%d)\n", *outPath, res.Reached, res.Epochs)
}
