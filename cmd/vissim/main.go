// Command vissim runs one Complete Visibility scenario and reports the
// outcome; it is the scriptable front end of the simulator.
//
// Usage:
//
//	vissim -n 64                              # defaults: logvis, async-random, uniform
//	vissim -n 128 -algo seqvis -sched fsync
//	vissim -n 40 -family onion -seed 7 -v
//	vissim -n 32 -concurrent                  # goroutine-per-robot runtime
//	vissim -n 64 -csv runs.csv                # append a summary row
//	vissim -n 64 -trace run.jsonl             # record a full event trace
//	vissim -n 64 -telemetry epochs.jsonl      # per-epoch phase telemetry
//	vissim -n 64 -flight crash.jsonl          # last-512-events dump on failure
//	vissim -n 64 -scenario "crash=3@0.25,jitter=1e-6"   # stressor suite
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"luxvis/internal/baseline"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/model"
	"luxvis/internal/obs"
	"luxvis/internal/rt"
	"luxvis/internal/scenario"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/trace"
	"luxvis/internal/version"
)

func main() {
	var (
		n          = flag.Int("n", 32, "number of robots")
		algoName   = flag.String("algo", "logvis", "algorithm: logvis | seqvis")
		schedName  = flag.String("sched", "async-random", "scheduler: fsync | ssync | async-random | async-stale | async-rr")
		famName    = flag.String("family", "uniform", "initial configuration family")
		seed       = flag.Int64("seed", 1, "random seed")
		maxEpochs  = flag.Int("max-epochs", 4096, "epoch cap")
		nonRigid   = flag.Bool("non-rigid", false, "enable the non-rigid motion adversary")
		concurrent = flag.Bool("concurrent", false, "use the goroutine-per-robot runtime instead of the event engine")
		verbose    = flag.Bool("v", false, "print per-violation details")
		csvPath    = flag.String("csv", "", "append a run-summary CSV row to this file")
		tracePath  = flag.String("trace", "", "write a JSONL event trace to this file")
		telePath   = flag.String("telemetry", "", "stream per-epoch phase telemetry JSONL to this file")
		flightPath = flag.String("flight", "", "write a flight-recorder dump (last events) to this file on violation/abort")
		scenarioS  = flag.String("scenario", "", "stressor scenario, e.g. \"sched=greedy-stale,crash=2@0.25:moving,jitter=1e-6\" (see internal/scenario)")
		flightK    = flag.Int("flight-events", 0, "flight-recorder ring size (0 = default 512)")
		showVer    = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}

	var algo model.Algorithm
	switch *algoName {
	case "logvis":
		algo = core.NewLogVis()
	case "seqvis":
		algo = baseline.NewSeqVis()
	default:
		fmt.Fprintf(os.Stderr, "vissim: unknown algorithm %q (known: logvis, seqvis)\n", *algoName)
		os.Exit(2)
	}
	// Validate user-supplied names before any work: config.Generate
	// panics on unknown families (they are compiled into experiment
	// tables), so the CLI checks first and fails with the known list.
	if !knownFamily(config.Family(*famName)) {
		fmt.Fprintf(os.Stderr, "vissim: unknown family %q (known: %s)\n",
			*famName, familyList())
		os.Exit(2)
	}
	scheduler, err := sched.ByNameErr(*schedName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
		os.Exit(2)
	}
	scen, err := scenario.Parse(*scenarioS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
		os.Exit(2)
	}
	if *scenarioS != "" && *concurrent {
		// The stressor suite threads through the event engine's Options;
		// the goroutine runtime has its own (narrower) knobs in rt.Options.
		fmt.Fprintln(os.Stderr, "vissim: -scenario applies to the event engine, not -concurrent")
		os.Exit(2)
	}
	pts := config.Generate(config.Family(*famName), *n, *seed)

	// Optional observers: per-epoch telemetry and the flight recorder
	// share one fan-out; absent flags keep Observer nil (zero cost).
	var observers []sim.Observer
	if *telePath != "" {
		f, err := os.Create(*telePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		observers = append(observers, obs.NewTelemetryWriter(f))
	}
	var flight *obs.FlightRecorder
	if *flightPath != "" {
		f, err := os.Create(*flightPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		flight = obs.NewFlightRecorder(*flightK, f)
		observers = append(observers, flight)
	}
	observer := obs.Multi(observers...)

	if *concurrent {
		res, err := rt.Run(algo, pts, rt.Options{Seed: *seed, MaxWall: 2 * time.Minute, Observer: observer})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("algorithm=%s runtime=goroutines n=%d reached=%v epochs=%d cycles=%d wall=%v\n",
			*algoName, *n, res.Reached, res.Epochs, res.Cycles, res.Wall.Round(time.Millisecond))
		if !res.Reached {
			os.Exit(1)
		}
		return
	}

	opt := sim.DefaultOptions(scheduler, *seed)
	opt.MaxEpochs = *maxEpochs
	opt.NonRigid = *nonRigid
	opt.RecordTrace = *tracePath != ""
	opt.Observer = observer
	// The scenario composes on top of the base flags; its sched= key, if
	// present, overrides -sched.
	if err := scen.Apply(&opt, *n); err != nil {
		fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
		os.Exit(2)
	}
	res, err := sim.Run(algo, pts, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("algorithm=%s scheduler=%s family=%s n=%d seed=%d\n",
		res.Algorithm, res.Scheduler, *famName, res.N, res.Seed)
	if *scenarioS != "" {
		fmt.Printf("scenario=%q crashed=%v\n", scen.String(), res.Crashed)
	}
	fmt.Printf("reached=%v epochs=%d first-cv-epoch=%d events=%d cycles=%d\n",
		res.Reached, res.Epochs, res.FirstCVEpoch, res.Events, res.Cycles)
	fmt.Printf("moves=%d total-dist=%.1f colors=%d collisions=%d path-crossings=%d min-pair-dist=%.4g\n",
		res.Moves, res.TotalDist, res.ColorsUsed, res.Collisions, res.PathCrossings, res.MinPairDist)
	fmt.Printf("phase-cycles interior=%d edge=%d corner=%d other=%d (moves %d/%d/%d/%d)\n",
		res.PhaseCycles[sim.PhaseInterior], res.PhaseCycles[sim.PhaseEdge],
		res.PhaseCycles[sim.PhaseCorner], res.PhaseCycles[sim.PhaseOther],
		res.PhaseMoves[sim.PhaseInterior], res.PhaseMoves[sim.PhaseEdge],
		res.PhaseMoves[sim.PhaseCorner], res.PhaseMoves[sim.PhaseOther])
	if flight != nil && flight.Dumped() {
		fmt.Fprintf(os.Stderr, "vissim: flight-recorder dump written to %s\n", *flightPath)
	}
	if *verbose {
		for _, v := range res.Violations {
			fmt.Println("  ", v)
		}
	}

	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteRunCSV(f, []sim.Result{res}); err != nil {
			fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteJSONL(f, res); err != nil {
			fmt.Fprintf(os.Stderr, "vissim: %v\n", err)
			os.Exit(1)
		}
	}
	if !res.Reached {
		os.Exit(1)
	}
}

// knownFamily reports whether f is one of the compiled-in workload
// families.
func knownFamily(f config.Family) bool {
	for _, k := range config.Families() {
		if f == k {
			return true
		}
	}
	return false
}

// familyList renders the known families for error messages.
func familyList() string {
	fams := config.Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = string(f)
	}
	return strings.Join(names, ", ")
}
