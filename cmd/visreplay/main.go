// Command visreplay loads a JSONL event trace recorded by vissim (or
// any sim run with RecordTrace) and replays it: it validates the stream,
// prints a per-robot summary, and optionally re-renders the motion as an
// SVG figure — useful for inspecting a run after the fact without
// re-simulating it.
//
// Usage:
//
//	vissim -n 40 -trace run.jsonl
//	visreplay -in run.jsonl
//	visreplay -in run.jsonl -svg replay.svg
//	visreplay -in run.jsonl -verify      # independent safety audit
//	curl -N localhost:8080/v1/runs/r1/stream | visreplay -in -
//
// With -in - the trace is read from stdin, one event at a time with
// bounded memory (unless -verify or -svg needs the whole stream), so a
// live visserve stream pipes straight in. Records of unknown kinds —
// epoch marks and other stream annotations — are skipped, not errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"luxvis/internal/baseline"
	"luxvis/internal/circlevis"
	"luxvis/internal/core"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sim"
	"luxvis/internal/svgx"
	"luxvis/internal/trace"
	"luxvis/internal/verify"
	"luxvis/internal/version"
)

func main() {
	var (
		inPath  = flag.String("in", "", "JSONL trace file, or - for stdin (required)")
		svgPath = flag.String("svg", "", "render the replayed trajectories to this SVG file")
		doAudit = flag.Bool("verify", false, "re-derive all safety verdicts from the trace with the independent auditor")
		width   = flag.Float64("w", 720, "viewport width")
		height  = flag.Float64("h", 720, "viewport height")
		showVer = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "visreplay: -in is required")
		os.Exit(2)
	}

	var in io.Reader
	if *inPath == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(*inPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	// Stream the trace one event at a time: validation, path
	// reconstruction and the summary all work incrementally, so a file of
	// any size (or a live stream on stdin) replays in bounded memory. The
	// full event list is only materialized when the audit needs it.
	dec, err := trace.NewDecoder(in)
	if err != nil {
		fail(err)
	}
	header := dec.Header()

	fmt.Printf("trace: %s under %s, n=%d seed=%d epochs=%d events=%d reached=%v\n",
		header.Algorithm, header.Scheduler, header.N, header.Seed,
		header.Epochs, header.Events, header.Reached)

	// Validate ordering and reconstruct per-robot paths.
	paths := make(map[int][]geom.Point)
	steps := make(map[int]int)
	looks := make(map[int]int)
	var events []trace.Event
	keepEvents := *doAudit
	lastEvent := -1
	skipped := 0
	for i := 0; ; i++ {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(err)
		}
		// Streams carry annotations beyond engine events — epoch marks
		// from the stream hub, for one. They are not robot events; skip
		// them rather than tripping the ordering and range checks.
		if !engineEventKind(e.Kind) {
			skipped++
			continue
		}
		if e.Event < lastEvent {
			fail(fmt.Errorf("event %d out of order (%d after %d)", i, e.Event, lastEvent))
		}
		lastEvent = e.Event
		p := geom.Pt(e.X, e.Y)
		if !p.IsFinite() {
			fail(fmt.Errorf("event %d has non-finite position", i))
		}
		if e.Robot < 0 || e.Robot >= header.N {
			fail(fmt.Errorf("event %d names robot %d outside [0,%d)", i, e.Robot, header.N))
		}
		switch e.Kind {
		case "step":
			steps[e.Robot]++
			paths[e.Robot] = append(paths[e.Robot], p)
		case "look":
			looks[e.Robot]++
			if len(paths[e.Robot]) == 0 {
				paths[e.Robot] = append(paths[e.Robot], p)
			}
		}
		if keepEvents {
			events = append(events, e)
		}
	}
	if skipped > 0 {
		fmt.Printf("skipped %d non-event records (stream annotations)\n", skipped)
	}

	// Per-robot summary, ordered by distance travelled.
	type rowT struct {
		robot int
		dist  float64
		moves int
	}
	var rows []rowT
	for r, path := range paths {
		d := 0.0
		for i := 1; i < len(path); i++ {
			d += path[i].Dist(path[i-1])
		}
		rows = append(rows, rowT{robot: r, dist: d, moves: steps[r]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dist > rows[j].dist })
	fmt.Printf("robots with recorded motion: %d of %d\n", len(rows), header.N)
	show := 10
	if len(rows) < show {
		show = len(rows)
	}
	for _, row := range rows[:show] {
		fmt.Printf("  robot %-4d dist=%-9.1f steps=%-4d looks=%d\n",
			row.robot, row.dist, row.moves, looks[row.robot])
	}

	if *doAudit {
		if err := runAudit(header, events); err != nil {
			fail(err)
		}
	}

	if *svgPath != "" {
		out, err := os.Create(*svgPath)
		if err != nil {
			fail(err)
		}
		defer out.Close()
		ordered := make([][]geom.Point, 0, len(paths))
		for r := 0; r < header.N; r++ {
			if p, ok := paths[r]; ok {
				ordered = append(ordered, p)
			}
		}
		if err := svgx.RenderTrajectories(out, ordered, nil, *width, *height); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "visreplay: %v\n", err)
	os.Exit(1)
}

// engineEventKind reports whether kind is one of the engine's per-robot
// trace events, as opposed to a stream annotation (epoch marks, end
// notes) that carries no robot state.
func engineEventKind(kind string) bool {
	switch kind {
	case "look", "compute", "step", "crash":
		return true
	}
	return false
}

// runAudit rebuilds a sim.Result from the serialized trace and runs the
// independent auditor over it. The start configuration is each robot's
// position at its first Look (robots are stationary until their first
// move); the palette is resolved from the recorded algorithm name.
func runAudit(header trace.Header, events []trace.Event) error {
	var palette []model.Color
	switch header.Algorithm {
	case "logvis":
		palette = core.NewLogVis().Palette()
	case "seqvis":
		palette = baseline.NewSeqVis().Palette()
	case "circlevis":
		palette = circlevis.NewCircleVis().Palette()
	default:
		return fmt.Errorf("unknown algorithm %q in trace header", header.Algorithm)
	}

	start := make([]geom.Point, header.N)
	seen := make([]bool, header.N)
	res := sim.Result{N: header.N}
	final := make([]geom.Point, header.N)
	for _, e := range events {
		p := geom.Pt(e.X, e.Y)
		// A robot's first look fixes its start; a robot crashed before it
		// ever Looked never moved, so its crash position is its start too.
		if (e.Kind == "look" || e.Kind == "crash") && !seen[e.Robot] {
			start[e.Robot] = p
			seen[e.Robot] = true
		}
		if e.Kind == "crash" {
			// The auditor cross-checks its trace-derived crashed set
			// against the engine's; rebuild the latter from the same
			// stream (sorted: the engine canonicalizes at finish).
			res.Crashed = append(res.Crashed, e.Robot)
		}
		final[e.Robot] = p
		res.Trace = append(res.Trace, sim.TraceEvent{
			Event: e.Event, Robot: e.Robot, Kind: e.Kind, Pos: p,
			Color: colorByName(e.Color),
		})
	}
	sort.Ints(res.Crashed)
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("robot %d never Looked in the trace; cannot recover its start", i)
		}
	}
	res.Final = final

	rep, err := verify.Audit(start, palette, res)
	if err != nil {
		return err
	}
	fmt.Printf("audit: events=%d colocations=%d pass-throughs=%d path-crossings=%d palette-violations=%d final-CV=%v clean=%v\n",
		rep.Events, rep.Colocations, rep.PassThroughs, rep.PathCrossings,
		rep.PaletteViolations, rep.FinalCV, rep.Clean())
	if rep.Crashes > 0 {
		fmt.Printf("crash run: crashed=%v survivor-CV=%v\n", rep.Crashed, rep.SurvivorCV)
	}
	for i, p := range rep.Problems {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(rep.Problems)-10)
			break
		}
		fmt.Println("  ", p)
	}
	return nil
}

// colorByName inverts model.Color.String() for trace deserialization.
func colorByName(name string) model.Color {
	for _, c := range model.AllColors() {
		if c.String() == name {
			return c
		}
	}
	return model.Off
}
