# luxvis build gates. `make check` is the full pre-merge battery; the
# individual targets mirror the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: build test lint vet race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## lint: run the domain-aware static analysis suite (see DESIGN.md,
## "Static invariants"). Fails on any error-severity finding.
lint:
	$(GO) run ./cmd/vislint ./...

vet:
	$(GO) vet ./...

## race: the concurrent runtime (one goroutine per robot) and the
## engine under the race detector.
race:
	$(GO) test -race ./internal/rt/... ./internal/sim/...

## check: everything a PR must pass, in fail-fast order.
check: build vet lint test race
	@echo "all gates passed"
