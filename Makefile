# luxvis build gates. `make check` is the full pre-merge battery; the
# individual targets mirror the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: build test lint lint-clean vet race bench-smoke fuzz-smoke scenarios bench-visibility bench-stream bench-check stream-soak check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## lint: run the domain-aware static analysis suite (see DESIGN.md,
## "Static invariants"). Fails on any error-severity finding. Runs are
## incremental — per-package results are cached by content hash under
## os.UserCacheDir()/luxvis-vislint — and parallel across all cores
## (output is byte-identical at any worker count).
NPROC ?= $(shell nproc 2>/dev/null || echo 1)
lint:
	$(GO) run ./cmd/vislint -workers=$(NPROC) ./...

## lint-clean: bust the vislint result cache (use after suspecting a
## stale cache; keys fold in toolchain and analyzer versions, so this
## should rarely be needed).
lint-clean:
	$(GO) run ./cmd/vislint -clear-cache

vet:
	$(GO) vet ./...

## race: the concurrent runtime (one goroutine per robot), the engine,
## the HTTP service, the observability layer, the stream hub and the
## parallel visibility kernel under the race detector.
race:
	$(GO) test -race ./internal/rt/... ./internal/sim/... ./internal/serve/... ./internal/obs/... ./internal/stream/... ./internal/geom/...

## bench-smoke: every benchmark compiles and completes one iteration
## (catches drift between the experiment harness and bench_test.go).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## fuzz-smoke: short fuzz runs of the geometry differential targets,
## mirroring the CI smoke (corpora live in internal/geom/testdata/fuzz).
fuzz-smoke:
	$(GO) test ./internal/geom -run '^$$' -fuzz '^FuzzVisibleAgainstNaive$$' -fuzztime 15s
	$(GO) test ./internal/geom -run '^$$' -fuzz '^FuzzSegmentCross$$' -fuzztime 15s
	$(GO) test ./internal/geom -run '^$$' -fuzz '^FuzzSnapshotUpdate$$' -fuzztime 15s
	$(GO) test ./internal/scenario -run '^$$' -fuzz '^FuzzScenarioConfig$$' -fuzztime 15s

## scenarios: the robustness matrix at CI scale — every stressor of the
## scenario suite against the paper's claims, 1 seed, engine-vs-auditor
## parity on every cell, under the race detector. The full matrix is
## `go run ./cmd/visbench -exp R1` (see EXPERIMENTS.md).
scenarios:
	$(GO) test ./internal/exp -race -count=1 -run '^TestRobustnessMatrixSmoke$$' -v
	$(GO) test ./internal/verify -race -count=1 -run '^TestDifferentialScenarioSweep$$' -v

## bench-visibility: regenerate the visibility-kernel benchmark baseline
## (kernel vs per-Look vs incremental, with host info). Takes minutes;
## commit the refreshed BENCH_visibility.json with perf-relevant changes.
bench-visibility:
	$(GO) run ./cmd/visbench -bench-visibility BENCH_visibility.json

## bench-stream: regenerate the stream fan-out benchmark baseline
## (engine overhead at 1/64/1024/4096 subscribers, with drop counts).
## Commit the refreshed BENCH_stream.json with streaming-path changes.
bench-stream:
	$(GO) run ./cmd/visbench -bench-stream BENCH_stream.json

## bench-check: the perf-regression gate — re-measure a CI-sized subset
## and compare ratios (kernel speedup, stream overhead) against the
## checked-in baselines within a tolerance. Skips (exit 0) when this
## host's core count differs from the baseline's: wall-clock ratios
## only transfer within a host shape. Exit 1 = regression.
bench-check:
	$(GO) run ./cmd/visbench -check-baseline

## stream-soak: the CI soak — hundreds of concurrent SSE subscribers on
## one hot run under the race detector, with a goroutine-leak bound.
stream-soak:
	$(GO) test ./internal/serve -race -count=1 -run '^TestStreamSoak$$' -v

## check: everything a PR must pass, in fail-fast order.
check: build vet lint test race bench-smoke fuzz-smoke scenarios
	@echo "all gates passed"
