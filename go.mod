module luxvis

go 1.22
